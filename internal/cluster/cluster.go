// Package cluster implements the paper's generic parallel reasoning
// algorithm (§IV, Algorithm 3). A master assigns each worker its base
// tuples and rule set (produced by either partitioning approach); workers
// then proceed in rounds: materialize locally to fixpoint, route newly
// derived tuples to the workers that may need them, barrier, receive, and
// repeat. The run terminates when a round ends with no tuples sent by any
// worker and none in transit (the transports guarantee delivery before the
// barrier completes, so "none in transit" is implied).
//
// Per-worker wall-clock time is split into the categories of the paper's
// Figure 2: Reason (rule engine), IO (send + receive through the
// transport), Sync (waiting on the barrier), and — on the master side —
// Aggregate (unioning worker outputs).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"powl/internal/faultinject"
	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
	"powl/internal/transport"
)

// Router decides where a newly derived triple must be sent. For the data
// partitioning strategy this consults the ownership table; for rule
// partitioning it matches the triple against the other partitions' rule
// bodies.
type Router interface {
	Destinations(t rdf.Triple, from int) []int
}

// Assignment is one worker's slice of the problem.
type Assignment struct {
	// Base are the worker's initial tuples (its data partition plus the
	// replicated schema closure).
	Base []rdf.Triple
	// Rules is the rule set the worker applies (the full compiled set for
	// data partitioning; a subset for rule partitioning).
	Rules []rules.Rule
}

// Mode selects how workers execute.
type Mode int

const (
	// Concurrent runs one goroutine per worker with a real barrier — the
	// deployment shape. Wall-clock speedups are only meaningful when the
	// host has at least as many cores as workers.
	Concurrent Mode = iota
	// Simulated executes the workers' rounds sequentially on one core,
	// measures each phase, and reports the parallel elapsed time as the
	// sum over rounds of the slowest worker's phase times — the barrier
	// semantics of Algorithm 3 evaluated analytically. This is how the
	// speedup figures are reproduced on hosts with fewer cores than the
	// paper's 16-node cluster (see DESIGN.md, substitutions). Per-worker
	// Sync is the time the worker would have waited for the round's
	// slowest peer.
	Simulated
)

// Config configures a parallel run.
type Config struct {
	Engine    reason.Engine
	Transport transport.Transport
	Router    Router
	Mode      Mode
	// MaxRounds caps the number of rounds as a safety net; 0 means 1000.
	MaxRounds int
	// RoundTimeout bounds one worker's round — reason, send, barrier wait
	// and receive. A worker that blows the deadline (most often: stuck at
	// the barrier because a peer died) aborts the run with
	// context.DeadlineExceeded instead of hanging forever. 0 disables.
	RoundTimeout time.Duration
	// Obs, when non-nil, journals the run: per-worker phase spans each
	// round, per-rule profiles, and transport totals. The phase events
	// carry exactly the durations accumulated into Timings, so a journal
	// reconciles with Result.PerWorker. nil disables all recording.
	Obs *obs.Run
	// Recovery, when non-nil, arms transport-generic worker recovery:
	// workers checkpoint per-round deltas into Recovery.Store, a failure
	// detector watches barrier progress (and transport Health when the
	// transport reports it), and a dead worker's partition is adopted by
	// the lowest-numbered live worker — the closure still equals the
	// serial fixpoint. nil keeps the original fail-stop behavior.
	Recovery *RecoveryConfig
	// Inject holds optional per-worker fault schedules: Inject[i], when
	// non-nil, drives worker i (crash-at-round). Entries beyond the slice
	// mean no injection. Transport-level faults (send/recv failures,
	// connection drops) belong on a faultinject.Transport wrapper instead.
	Inject []*faultinject.Injector
	// Provenance enables derivation recording on every worker graph and on
	// the aggregated result: engines record rule + premises per derived
	// triple, shipped deltas carry lineage when the transport implements
	// transport.LineageCarrier, checkpoints carry it when the store
	// implements LineageCheckpointStore, and the aggregate merge preserves
	// it — so Explain works on the merged closure and adopted partitions
	// keep their lineage. Transports/stores without lineage support degrade
	// to lineage-free exchange for the triples that cross them; the closure
	// itself is unaffected.
	Provenance bool
}

// injector returns worker i's fault injector; nil (no injection) is a valid
// receiver for every Injector method.
func (cfg Config) injector(i int) *faultinject.Injector {
	if i < len(cfg.Inject) {
		return cfg.Inject[i]
	}
	return nil
}

// Timings is the per-worker cost breakdown.
type Timings struct {
	Reason    time.Duration
	IO        time.Duration
	Sync      time.Duration
	Aggregate time.Duration // only set on the aggregated result
	Rounds    int
	// Derived counts the triples this worker derived (beyond its base),
	// the per-processor term of the paper's OR metric.
	Derived int
	// Sent counts triples shipped to other workers.
	Sent int
}

// Result of a parallel run.
type Result struct {
	// Graph is the union of all workers' final graphs (base + inferred).
	Graph *rdf.Graph
	// PerWorker holds each worker's timing breakdown.
	PerWorker []Timings
	// OutputSizes[i] is worker i's final local graph size.
	OutputSizes []int
	// Rounds is the number of rounds until global quiescence.
	Rounds int
	// Elapsed is the parallel elapsed time: wall-clock in Concurrent mode,
	// the barrier-reconstructed time in Simulated mode. Aggregation is
	// included in both.
	Elapsed time.Duration
	// RoundStats (Simulated mode only) records, per round, the maxima that
	// determined the round's simulated duration.
	RoundStats []RoundStat
	// Recovered maps each dead worker's id to the live worker that adopted
	// its partition (recovery runs only; empty when nobody died).
	Recovered map[int]int
}

// RoundStat is one round's cost profile in Simulated mode.
type RoundStat struct {
	// MaxWork is the slowest worker's reason+send time this round.
	MaxWork time.Duration
	// MaxRecv is the slowest receive.
	MaxRecv time.Duration
	// Sent is the total number of tuples shipped this round.
	Sent int
}

// Run executes Algorithm 3 over the given assignments. It is
// RunContext with a background context — uncancellable, as the original
// fail-stop deployment was.
func Run(cfg Config, assigns []Assignment) (*Result, error) {
	return RunContext(context.Background(), cfg, assigns)
}

// RunContext executes Algorithm 3 over the given assignments under ctx.
// Cancelling ctx aborts the run (the barrier wakes all workers), and
// cfg.RoundTimeout additionally bounds each worker's individual rounds.
//
//powl:ignore wallclock Concurrent-mode Elapsed is defined as real wall-clock; Simulated takes the runSimulated path, which reconstructs its own clock.
func RunContext(ctx context.Context, cfg Config, assigns []Assignment) (*Result, error) {
	k := len(assigns)
	if k == 0 {
		return nil, fmt.Errorf("cluster: no assignments")
	}
	if cfg.Engine == nil || cfg.Transport == nil || cfg.Router == nil {
		return nil, fmt.Errorf("cluster: config requires Engine, Transport and Router")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	cfg.Obs.Emit(obs.Event{Type: obs.EvRunStart, TS: cfg.Obs.Now(),
		Worker: obs.MasterWorker, Name: cfg.Engine.Name(), N: int64(k)})

	start := time.Now()
	workers := make([]*worker, k)
	for i := range workers {
		g := rdf.NewGraphCap(len(assigns[i].Base))
		if cfg.Provenance {
			// Enable before the base load so the side-column is built in
			// lockstep instead of backfilled; base tuples read as asserted.
			g.EnableProv()
		}
		g.AddAll(assigns[i].Base)
		workers[i] = &worker{
			id:    i,
			graph: g,
			rules: assigns[i].Rules,
			// Base tuples are known to every worker that should have them
			// (the partitioner placed them); the shipping watermark starts
			// past them so they are never re-shipped.
			shipped: g.Len(),
		}
		workers[i].inj = cfg.injector(i)
	}

	if cfg.Mode == Simulated {
		return runSimulated(ctx, cfg, workers, assigns, maxRounds)
	}

	bar := newBarrier(k)
	var coord *coordinator
	if cfg.Recovery != nil {
		coord = newCoordinator(k, cfg.Recovery.withDefaults(), bar, cfg.Obs, assigns)
		for _, w := range workers {
			w.coord = coord
		}
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	rounds := 0
	var roundsMu sync.Mutex

	cancels := make([]context.CancelFunc, k)
	for i := range workers {
		// Under recovery each worker gets its own cancellable context so
		// the coordinator can interrupt one declared dead mid-phase without
		// touching its peers.
		wctx := ctx
		if coord != nil {
			var wcancel context.CancelFunc
			wctx, wcancel = context.WithCancel(ctx)
			cancels[i] = wcancel
			coord.cancels[i] = wcancel
		}
		wg.Add(1)
		go func(w *worker, wctx context.Context) {
			defer wg.Done()
			r, err := w.run(wctx, cfg, bar, maxRounds)
			if err != nil {
				errs[w.id] = err
			}
			roundsMu.Lock()
			if r > rounds {
				rounds = r
			}
			roundsMu.Unlock()
		}(workers[i], wctx)
	}
	detCancel := func() {}
	if coord != nil {
		var detCtx context.Context
		detCtx, detCancel = context.WithCancel(context.Background())
		go coord.detect(detCtx, cfg.Transport)
	}
	wg.Wait()
	detCancel()
	for _, c := range cancels {
		if c != nil {
			c()
		}
	}
	if coord != nil {
		// A stepped-aside worker is not a run failure: its partition was
		// adopted and the survivors finished the fixpoint.
		for i, err := range errs {
			if errors.Is(err, errWorkerDead) {
				errs[i] = nil
			}
		}
		if cerr := coord.runErr(); cerr != nil {
			return nil, cerr
		}
	}
	if err := firstCause(errs); err != nil {
		return nil, err
	}

	aggAt := cfg.Obs.Now()
	res, err := aggregate(workers, coord, cfg.Provenance)
	if err != nil {
		return nil, err
	}
	if coord != nil {
		res.Recovered = coord.recoveredMap()
	}
	res.Rounds = rounds
	res.Elapsed = time.Since(start)
	finishRun(cfg.Obs, res, aggAt)
	return res, nil
}

// finishRun emits the master-side tail of the journal: the aggregation
// span, the per-worker rule profiles and transport totals, and the run_end
// marker. end is the journal timestamp at which the parallel phase finished
// — the real clock in Concurrent mode, the reconstructed clock in Simulated
// mode.
func finishRun(o *obs.Run, res *Result, end int64) {
	agg := int64(res.PerWorker[0].Aggregate)
	o.Emit(obs.Event{Type: obs.EvPhase, TS: end, Dur: agg,
		Worker: obs.MasterWorker, Round: res.Rounds, Phase: obs.PhaseAggregate})
	o.FlushProfiles(end + agg)
	o.Emit(obs.Event{Type: obs.EvRunEnd, TS: end + agg, Dur: int64(res.Elapsed),
		Worker: obs.MasterWorker, N: int64(res.Rounds)})
}

// emitPhase records one completed phase slice that ended "now" on the real
// clock (Concurrent mode): the start is reconstructed by subtracting the
// measured duration. A nil observer discards the event.
func emitPhase(o *obs.Run, worker, round int, phase string, d time.Duration, n int64) {
	o.Emit(obs.Event{Type: obs.EvPhase, TS: o.Now() - int64(d), Dur: int64(d),
		Worker: worker, Round: round, Phase: phase, N: n})
}

type worker struct {
	id    int
	graph *rdf.Graph
	rules []rules.Rule
	// shipped is the graph-log watermark of routed knowledge: every triple
	// at log offset < shipped is base, already routed, or received (global
	// knowledge). The graph log is append-only and deduplicated, so the send
	// phase's delta is exactly TriplesSince(shipped) — no per-triple
	// membership map, no full-graph walk per round.
	shipped int
	// reship holds adopted checkpoint triples that sit below the watermark
	// but still need routing: a dead peer may have derived them without
	// completing its sends, so the adopter re-routes them (receivers
	// deduplicate). Empty except after an adoption.
	reship map[rdf.Triple]struct{}
	tm     Timings
	// materialized is set after the first full materialization; later
	// rounds only need to close over the tuples received since.
	materialized bool
	// received holds the tuples absorbed in the previous round's receive
	// phase — the seeds of the next incremental materialization.
	received []rdf.Triple
	// coord is the run's recovery coordinator (nil when recovery is off;
	// its methods are nil-safe).
	coord *coordinator
	// inj optionally injects this worker's scheduled faults (crash-at-round).
	inj *faultinject.Injector
	// adopted lists the dead peers' partition ids this worker absorbed;
	// their inboxes are drained alongside its own and sends to them are
	// short-circuited (the partition lives here now).
	adopted []int
}

// phaseReason runs the local materialization to fixpoint (Algorithm 3
// step 3) and returns its duration. The first round materializes fully;
// subsequent rounds exploit that the graph was at fixpoint before the
// received tuples arrived: nothing received means nothing to do, and an
// Incremental engine closes over just the received seeds.
//
//powl:ignore wallclock measures the real phase duration that feeds Timings and, in Simulated mode, the reconstructed clock — an input to the cost model, not a timestamp in its output.
func (w *worker) phaseReason(ctx context.Context, cfg Config) (time.Duration, error) {
	// Attach the worker's rule collector so the engines profile per-rule
	// work, and its piece collector so the parallel fire loop journals one
	// span per stratum firing; with Obs nil both return ctx unchanged.
	ctx = obs.ContextWithRules(ctx, cfg.Obs.Rules(w.id))
	ctx = obs.ContextWithPieces(ctx, cfg.Obs.Pieces(w.id))
	t0 := time.Now()
	var n int
	var err error
	switch {
	case !w.materialized:
		n, err = reason.MaterializeCtx(ctx, cfg.Engine, w.graph, w.rules)
		w.materialized = true
	case len(w.received) == 0:
		// Fixpoint unchanged since last round.
	default:
		if inc, ok := cfg.Engine.(reason.Incremental); ok {
			n, err = reason.MaterializeFromCtx(ctx, inc, w.graph, w.rules, w.received)
		} else {
			n, err = reason.MaterializeCtx(ctx, cfg.Engine, w.graph, w.rules)
		}
	}
	w.tm.Derived += n
	w.received = w.received[:0]
	d := time.Since(t0)
	w.tm.Reason += d
	if err != nil {
		return d, fmt.Errorf("cluster: worker %d reason: %w", w.id, err)
	}
	return d, nil
}

// phaseSend routes every not-yet-shipped triple (step 4) and returns the
// number sent and the phase duration. The delta is read straight off the
// graph's append-only log above the shipping watermark — the reason phase's
// new derivations — plus any adopted checkpoint triples queued for
// re-routing.
//
//powl:ignore wallclock measures the real phase duration that feeds Timings and the Simulated reconstruction.
func (w *worker) phaseSend(ctx context.Context, cfg Config, round int) (int, time.Duration, error) {
	t0 := time.Now()
	var adoptedSet map[int]bool
	if len(w.adopted) > 0 {
		adoptedSet = make(map[int]bool, len(w.adopted))
		for _, v := range w.adopted {
			adoptedSet[v] = true
		}
	}
	var delta []rdf.Triple
	outbox := map[int][]rdf.Triple{}
	route := func(t rdf.Triple) {
		delta = append(delta, t)
		for _, dst := range cfg.Router.Destinations(t, w.id) {
			// A destination this worker adopted is this worker: the triple
			// is already in its graph and marked sent.
			if adoptedSet[dst] {
				continue
			}
			outbox[dst] = append(outbox[dst], t)
		}
	}
	for _, t := range w.graph.TriplesSince(w.shipped) {
		route(t)
	}
	w.shipped = w.graph.Len()
	if len(w.reship) > 0 {
		// Adopted checkpoint triples, in sorted order: map order would make
		// the send sequence differ from run to run.
		rs := make([]rdf.Triple, 0, len(w.reship))
		for t := range w.reship {
			rs = append(rs, t)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
		for _, t := range rs {
			route(t)
		}
		clear(w.reship)
	}
	// Checkpoint the delta before any send leaves: if this worker dies
	// mid-send, its adopter replays the delta and re-routes it (receivers
	// deduplicate), so a half-finished send phase loses nothing. With
	// provenance on and a lineage-capable store, the delta's lineage is
	// checkpointed alongside, so the adopter can replay derivations with
	// their records intact.
	if w.coord != nil && len(delta) > 0 {
		if err := w.coord.store.Save(w.id, round, delta); err != nil {
			return 0, 0, fmt.Errorf("cluster: worker %d checkpoint: %w", w.id, err)
		}
		if ls, ok := w.coord.store.(LineageCheckpointStore); ok && w.graph.Prov() != nil {
			if err := ls.SaveLineage(w.id, round, lineageOfAll(w.graph, delta)); err != nil {
				return 0, 0, fmt.Errorf("cluster: worker %d lineage checkpoint: %w", w.id, err)
			}
		}
		cfg.Obs.Emit(obs.Event{Type: obs.EvCheckpoint, TS: cfg.Obs.Now(),
			Worker: w.id, Round: round, N: int64(len(delta))})
	}
	// Send in ascending destination order: map order would make the send
	// sequence — and therefore which send an injected transport fault hits —
	// differ from run to run.
	dsts := make([]int, 0, len(outbox))
	for dst := range outbox {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	lc, _ := cfg.Transport.(transport.LineageCarrier)
	if w.graph.Prov() == nil {
		lc = nil
	}
	nSent := 0
	for _, dst := range dsts {
		ts := outbox[dst]
		if err := cfg.Transport.Send(ctx, round, w.id, dst, ts); err != nil {
			return 0, 0, fmt.Errorf("cluster: worker %d send: %w", w.id, err)
		}
		if lc != nil {
			if err := lc.SendLineage(ctx, round, w.id, dst, lineageOfAll(w.graph, ts)); err != nil {
				return 0, 0, fmt.Errorf("cluster: worker %d send lineage: %w", w.id, err)
			}
		}
		nSent += len(ts)
	}
	w.tm.Sent += nSent
	d := time.Since(t0)
	w.tm.IO += d
	return nSent, d, nil
}

// phaseRecv absorbs the tuples other workers sent this round (step 5),
// including anything addressed to partitions this worker adopted — peers
// keep routing to the dead worker's id, and its mailbox now drains here.
//
//powl:ignore wallclock measures the real phase duration that feeds Timings and the Simulated reconstruction.
func (w *worker) phaseRecv(ctx context.Context, cfg Config, round int) (time.Duration, error) {
	t0 := time.Now()
	in, err := cfg.Transport.Recv(ctx, round, w.id)
	if err != nil {
		return 0, fmt.Errorf("cluster: worker %d recv: %w", w.id, err)
	}
	for _, v := range w.adopted {
		more, merr := cfg.Transport.Recv(ctx, round, v)
		if merr != nil {
			return 0, fmt.Errorf("cluster: worker %d recv (adopted %d): %w", w.id, v, merr)
		}
		in = append(in, more...)
	}
	// Lineage of the received triples, when the transport ships it and this
	// worker records provenance. Records are matched by triple value: the
	// triple boxes and the lineage boxes are drained independently, so
	// positional alignment cannot be assumed.
	var linMap map[rdf.Triple]rdf.Lineage
	if lc, ok := cfg.Transport.(transport.LineageCarrier); ok && w.graph.Prov() != nil {
		ls, lerr := lc.RecvLineage(ctx, round, w.id)
		if lerr != nil {
			return 0, fmt.Errorf("cluster: worker %d recv lineage: %w", w.id, lerr)
		}
		for _, v := range w.adopted {
			more, merr := lc.RecvLineage(ctx, round, v)
			if merr != nil {
				return 0, fmt.Errorf("cluster: worker %d recv lineage (adopted %d): %w", w.id, v, merr)
			}
			ls = append(ls, more...)
		}
		if len(ls) > 0 {
			linMap = make(map[rdf.Triple]rdf.Lineage, len(ls))
			for _, l := range ls {
				linMap[l.T] = l
			}
		}
	}
	// Checkpoint received tuples before absorbing them: they may seed
	// derivations that exist nowhere else once the senders have marked them
	// shipped, so an adopter of *this* worker must be able to replay them.
	if w.coord != nil && len(in) > 0 {
		if err := w.coord.store.Save(w.id, round, in); err != nil {
			return 0, fmt.Errorf("cluster: worker %d recv checkpoint: %w", w.id, err)
		}
		if ls, ok := w.coord.store.(LineageCheckpointStore); ok && len(linMap) > 0 {
			lins := make([]rdf.Lineage, 0, len(linMap))
			for _, t := range in {
				if l, ok := linMap[t]; ok {
					lins = append(lins, l)
				}
			}
			if err := ls.SaveLineage(w.id, round, lins); err != nil {
				return 0, fmt.Errorf("cluster: worker %d recv lineage checkpoint: %w", w.id, err)
			}
		}
	}
	for _, t := range in {
		added := false
		if lin, ok := linMap[t]; ok {
			added = w.graph.AddWithLineage(t, lin)
		} else {
			added = w.graph.Add(t)
		}
		if added {
			w.received = append(w.received, t)
		}
	}
	// Received tuples are already global knowledge; advancing the watermark
	// past them means the next send phase never re-ships them. Receive is the
	// round's last phase, so everything above the send-phase watermark here
	// is exactly what this receive absorbed.
	w.shipped = w.graph.Len()
	d := time.Since(t0)
	w.tm.IO += d
	return d, nil
}

// ErrPeerAbort is returned by workers whose barrier was torn down because
// some other worker failed; that worker's own error is the root cause.
var ErrPeerAbort = errors.New("cluster: aborted by peer failure")

// firstCause picks the run's root-cause error: the first worker error that is
// not a mere peer-abort echo, falling back to any error at all.
func firstCause(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrPeerAbort) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// roundCtx derives the context governing one worker-round: the run context,
// tightened by the per-round deadline when one is configured.
func roundCtx(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.RoundTimeout > 0 {
		return context.WithTimeout(ctx, cfg.RoundTimeout)
	}
	return ctx, func() {}
}

// run is one worker's round loop in Concurrent mode.
//
//powl:ignore wallclock barrier-wait duration is a real measurement (Concurrent mode only; Simulated derives Sync analytically).
func (w *worker) run(ctx context.Context, cfg Config, bar *barrier, maxRounds int) (int, error) {
	round := 0
	for ; round < maxRounds; round++ {
		// Scheduled fail-stop: the worker dies at the top of the round,
		// before doing any of its work. With recovery armed it reports its
		// own death (the detector would find it anyway, just slower) and
		// steps aside; without, the run aborts as it always did.
		if w.inj.Crash(round) {
			cfg.Obs.Emit(obs.Event{Type: obs.EvFault, TS: cfg.Obs.Now(),
				Worker: w.id, Round: round, Name: "crash"})
			if w.coord != nil {
				w.coord.workerDied(w.id, round, "crash")
				return round, errWorkerDead
			}
			bar.abort()
			return round, fmt.Errorf("cluster: worker %d crashed (injected) at round %d", w.id, round)
		}
		if w.coord.isDead(w.id) {
			return round, errWorkerDead
		}
		rctx, cancel := roundCtx(ctx, cfg)
		if err := w.adoptPending(rctx, cfg, round); err != nil {
			cancel()
			return round, w.stepAsideOr(bar, err)
		}

		rd, err := w.phaseReason(rctx, cfg)
		if err != nil {
			cancel()
			return round, w.stepAsideOr(bar, err)
		}
		emitPhase(cfg.Obs, w.id, round, obs.PhaseReason, rd, 0)

		nSent, sd, err := w.phaseSend(rctx, cfg, round)
		if err != nil {
			cancel()
			return round, w.stepAsideOr(bar, err)
		}
		emitPhase(cfg.Obs, w.id, round, obs.PhaseSend, sd, int64(nSent))

		// Barrier with global sent-count reduction. The round deadline
		// covers the wait: a worker stuck here because a peer died wakes
		// with DeadlineExceeded instead of hanging forever.
		w.coord.atBarrier(w.id, round)
		t0 := time.Now()
		totalSent, ok, berr := bar.syncCtx(rctx, nSent)
		syncD := time.Since(t0)
		w.tm.Sync += syncD
		if berr != nil {
			cancel()
			return round, w.stepAsideOr(bar,
				fmt.Errorf("cluster: worker %d barrier (round %d): %w", w.id, round, berr))
		}
		if !ok {
			cancel()
			return round, ErrPeerAbort
		}
		// Declared dead while waiting (a detector false positive, or a
		// cancellation that lost the race with the release): the partition
		// has been reassigned, so step aside rather than double-own it.
		if w.coord.isDead(w.id) {
			cancel()
			return round, errWorkerDead
		}
		emitPhase(cfg.Obs, w.id, round, obs.PhaseSync, syncD, 0)

		vd, err := w.phaseRecv(rctx, cfg, round)
		cancel()
		if err != nil {
			return round, w.stepAsideOr(bar, err)
		}
		emitPhase(cfg.Obs, w.id, round, obs.PhaseRecv, vd, 0)

		// Termination: a full round in which nobody sent anything.
		if totalSent == 0 {
			round++
			break
		}
	}
	w.tm.Rounds = round
	return round, nil
}

// runSimulated executes the round loop for all workers sequentially and
// reconstructs the parallel elapsed time from per-phase measurements: each
// round costs the maximum over workers of (reason + send), plus the maximum
// receive time; per-worker Sync is the gap to the round's slowest worker
// (the time it would have spent at the barrier).
//
// Journal events are stamped on the same reconstructed clock: a round
// starting at virtual time vt places worker i's reason span at vt, its send
// span right after, its barrier wait from the end of its work to the
// round's slowest worker, and all receives after that — so the exported
// trace shows the parallel schedule the reconstruction asserts, not the
// sequential execution that measured it.
func runSimulated(ctx context.Context, cfg Config, workers []*worker, assigns []Assignment, maxRounds int) (*Result, error) {
	var coord *coordinator
	if cfg.Recovery != nil {
		coord = newCoordinator(len(workers), cfg.Recovery.withDefaults(), nil, cfg.Obs, assigns)
		for _, w := range workers {
			w.coord = coord
		}
	}
	var simElapsed time.Duration
	var roundStats []RoundStat
	rounds := 0
	for round := 0; round < maxRounds; round++ {
		rounds = round + 1
		vt := int64(simElapsed)
		cfg.Obs.Emit(obs.Event{Type: obs.EvRoundStart, TS: vt,
			Worker: obs.MasterWorker, Round: round})
		// Scheduled deaths fire at the top of the round, before any work;
		// with recovery armed the adoption is immediate and deterministic
		// (there is no real barrier to resize — the phase loops below just
		// skip dead workers), without it the run aborts as Concurrent would.
		for _, w := range workers {
			if coord.isDead(w.id) || !w.inj.Crash(round) {
				continue
			}
			cfg.Obs.Emit(obs.Event{Type: obs.EvFault, TS: vt,
				Worker: w.id, Round: round, Name: "crash"})
			if coord == nil {
				return nil, fmt.Errorf("cluster: worker %d crashed (injected) at round %d", w.id, round)
			}
			coord.workerDied(w.id, round, "crash")
		}
		if err := coord.runErr(); err != nil {
			return nil, err
		}
		work := make([]time.Duration, len(workers))
		totalSent := 0
		for i, w := range workers {
			if coord.isDead(w.id) {
				continue
			}
			// Each worker-round gets its own deadline, mirroring what the
			// worker would experience running concurrently.
			rctx, cancel := roundCtx(ctx, cfg)
			if err := w.adoptPending(rctx, cfg, round); err != nil {
				cancel()
				return nil, err
			}
			d, err := w.phaseReason(rctx, cfg)
			if err != nil {
				cancel()
				return nil, err
			}
			n, sd, err := w.phaseSend(rctx, cfg, round)
			cancel()
			if err != nil {
				return nil, err
			}
			cfg.Obs.Emit(obs.Event{Type: obs.EvPhase, TS: vt, Dur: int64(d),
				Worker: w.id, Round: round, Phase: obs.PhaseReason})
			cfg.Obs.Emit(obs.Event{Type: obs.EvPhase, TS: vt + int64(d), Dur: int64(sd),
				Worker: w.id, Round: round, Phase: obs.PhaseSend, N: int64(n)})
			totalSent += n
			work[i] = d + sd
		}
		var slowest time.Duration
		for _, d := range work {
			if d > slowest {
				slowest = d
			}
		}
		for i, w := range workers {
			if coord.isDead(w.id) {
				continue
			}
			w.tm.Sync += slowest - work[i]
			cfg.Obs.Emit(obs.Event{Type: obs.EvPhase, TS: vt + int64(work[i]),
				Dur: int64(slowest - work[i]), Worker: w.id, Round: round,
				Phase: obs.PhaseSync})
		}
		var slowestRecv time.Duration
		for _, w := range workers {
			if coord.isDead(w.id) {
				continue
			}
			rctx, cancel := roundCtx(ctx, cfg)
			rd, err := w.phaseRecv(rctx, cfg, round)
			cancel()
			if err != nil {
				return nil, err
			}
			cfg.Obs.Emit(obs.Event{Type: obs.EvPhase, TS: vt + int64(slowest),
				Dur: int64(rd), Worker: w.id, Round: round, Phase: obs.PhaseRecv})
			if rd > slowestRecv {
				slowestRecv = rd
			}
		}
		simElapsed += slowest + slowestRecv
		cfg.Obs.Emit(obs.Event{Type: obs.EvRoundEnd, TS: int64(simElapsed),
			Dur: int64(slowest + slowestRecv), Worker: obs.MasterWorker,
			Round: round, N: int64(totalSent)})
		roundStats = append(roundStats, RoundStat{MaxWork: slowest, MaxRecv: slowestRecv, Sent: totalSent})
		if totalSent == 0 {
			break
		}
	}
	for _, w := range workers {
		w.tm.Rounds = rounds
	}
	res, err := aggregate(workers, coord, cfg.Provenance)
	if err != nil {
		return nil, err
	}
	if coord != nil {
		res.Recovered = coord.recoveredMap()
	}
	res.Rounds = rounds
	res.RoundStats = roundStats
	// Aggregation is real work on the master; include it at its measured
	// cost on top of the reconstructed parallel time.
	res.Elapsed = simElapsed + res.PerWorker[0].Aggregate
	finishRun(cfg.Obs, res, int64(simElapsed))
	return res, nil
}

// aggregate merges the workers' outputs into the final result. The timed
// aggregation step is the deduplicating merge of the per-worker result sets
// — the master-side work the paper's Figure 2 reports as "aggregation"
// (their implementation concatenated result files). Building the indexed
// result Graph afterwards is load-into-a-store post-processing that a serial
// run pays identically, so it is excluded from the timing.
//
// With prov set the merge instead builds the indexed, lineage-preserving
// union directly — walking each live worker's log in order and translating
// lineage through AddWithLineage needs the union's own indexes, so the
// indexed build cannot be split out of the timed section the way the plain
// set merge can. First derivation wins across workers, which keeps the
// merge deterministic: workers are walked in id order and each log in
// append order.
//
//powl:ignore wallclock aggregation is real master-side work, timed on the real clock in both modes (Simulated adds it on top of the reconstructed time).
func aggregate(workers []*worker, coord *coordinator, prov bool) (*Result, error) {
	maxLen := 0
	for _, w := range workers {
		if w.graph.Len() > maxLen {
			maxLen = w.graph.Len()
		}
	}
	aggStart := time.Now()
	var union *rdf.Graph
	var merged map[rdf.Triple]struct{}
	if prov {
		union = rdf.NewGraphCap(maxLen * 2)
		union.EnableProv()
	} else {
		merged = make(map[rdf.Triple]struct{}, maxLen*2)
	}
	res := &Result{
		PerWorker:   make([]Timings, len(workers)),
		OutputSizes: make([]int, len(workers)),
	}
	for i, w := range workers {
		res.PerWorker[i] = w.tm
		// A dead worker's graph died with it: its partition was
		// reconstructed by its adopter, whose graph is unioned instead.
		// Excluding it here is what makes the recovery tests honest.
		if coord.isDead(w.id) {
			continue
		}
		// Zero-copy log walk: the merge only reads, so the shared view is safe.
		if prov {
			for _, t := range w.graph.TriplesSince(0) {
				if lin, ok := w.graph.LineageOf(t); ok {
					union.AddWithLineage(t, lin)
				} else {
					union.Add(t)
				}
			}
		} else {
			for _, t := range w.graph.TriplesSince(0) {
				merged[t] = struct{}{}
			}
		}
		res.OutputSizes[i] = w.graph.Len()
	}
	agg := time.Since(aggStart)
	for i := range res.PerWorker {
		res.PerWorker[i].Aggregate = agg
	}

	if !prov {
		union = rdf.NewGraphCap(len(merged))
		for t := range merged {
			union.Add(t)
		}
	}
	res.Graph = union
	return res, nil
}

// lineageOfAll collects the lineage of every derived triple among ts (base
// triples contribute nothing).
func lineageOfAll(g *rdf.Graph, ts []rdf.Triple) []rdf.Lineage {
	var lins []rdf.Lineage
	for _, t := range ts {
		if lin, ok := g.LineageOf(t); ok {
			lins = append(lins, lin)
		}
	}
	return lins
}

// barrier is a reusable k-party barrier that also sums a per-round integer
// contribution (the sent counts) and supports cooperative abort.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	k       int
	waiting int
	gen     int
	sum     int
	out     int
	aborted bool
}

func newBarrier(k int) *barrier {
	b := &barrier{k: k}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// sync blocks until all k parties arrive, returning the sum of their
// contributions. ok is false if the barrier was aborted.
func (b *barrier) sync(contribution int) (sum int, ok bool) {
	sum, ok, _ = b.syncCtx(context.Background(), contribution)
	return sum, ok
}

// syncCtx is sync with a cancellable wait: when ctx is cancelled or its
// deadline passes while the party is waiting, it withdraws its contribution
// and returns the context's error — without waking or dooming the peers
// (the caller decides whether to abort the whole barrier).
func (b *barrier) syncCtx(ctx context.Context, contribution int) (sum int, ok bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	if b.aborted {
		return 0, false, nil
	}
	gen := b.gen
	b.sum += contribution
	b.waiting++
	// >= rather than ==: remove() may shrink k below the number already
	// waiting between this party's arrival and the release.
	if b.waiting >= b.k {
		b.out = b.sum
		b.sum = 0
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return b.out, !b.aborted, nil
	}
	// Wake the cond wait when ctx fires; Broadcast under the lock so the
	// wakeup cannot race with the wait re-check.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	for gen == b.gen && !b.aborted && ctx.Err() == nil {
		b.cond.Wait()
	}
	if b.aborted {
		return 0, false, nil
	}
	if gen == b.gen {
		// Left early on ctx: withdraw so a late peer cannot complete the
		// generation with this party's stale contribution.
		b.waiting--
		b.sum -= contribution
		return 0, false, ctx.Err()
	}
	return b.out, true, nil
}

// remove shrinks the barrier by one party — a worker died and will never
// arrive again. If the survivors are all already waiting, the generation
// releases immediately. deposit is added to the in-progress sum: the death
// path deposits a sentinel 1 so the death round cannot read as globally
// quiescent before the dead worker's partition has been adopted.
func (b *barrier) remove(deposit int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.k--
	b.sum += deposit
	if b.waiting >= b.k && b.waiting > 0 {
		b.out = b.sum
		b.sum = 0
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
}

// abort releases all waiters with ok=false; subsequent syncs fail fast.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}
