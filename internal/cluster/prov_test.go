package cluster

import (
	"testing"

	"powl/internal/faultinject"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

// provDerived counts the aggregated graph's derived triples and checks
// each one explains: a non-empty premise chain whose premises are in the
// graph and whose recorded rule is the fixture's one rule.
func provDerived(t *testing.T, g *rdf.Graph, wantRule string) int {
	t.Helper()
	if g.Prov() == nil {
		t.Fatal("aggregated graph has no provenance side-column")
	}
	derived := 0
	for _, tr := range g.Triples() {
		lin, ok := g.LineageOf(tr)
		if !ok {
			continue
		}
		derived++
		if lin.Rule != wantRule {
			t.Fatalf("derived %v attributed to rule %q, want %q", tr, lin.Rule, wantRule)
		}
		if len(lin.Prem) == 0 {
			t.Fatalf("derived %v has no premises", tr)
		}
		for _, p := range lin.Prem {
			if !g.Has(p) {
				t.Fatalf("premise %v of %v not in aggregated graph", p, tr)
			}
		}
		n, ok := g.Explain(tr, 0)
		if !ok || !n.IsDerived() || len(n.Premises) == 0 {
			t.Fatalf("Explain failed for derived %v: %+v ok=%v", tr, n, ok)
		}
	}
	return derived
}

// TestProvenanceSurvivesCluster runs the chain closure with provenance on
// over the lineage-carrying Mem transport: the aggregated graph must equal
// the serial closure AND carry an explainable derivation for every derived
// triple — including triples derived on one worker and shipped to another.
func TestProvenanceSurvivesCluster(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		for _, k := range []int{1, 3} {
			f := newChainFixture(t, 12, k)
			res, err := Run(Config{
				Engine:     reason.Forward{},
				Transport:  transport.NewMem(),
				Router:     ownerRouter{f.owner},
				Mode:       mode,
				Provenance: true,
			}, f.assignments(k))
			if err != nil {
				t.Fatalf("mode=%v k=%d: %v", mode, k, err)
			}
			if !res.Graph.Equal(f.closed) {
				t.Fatalf("mode=%v k=%d: closure mismatch", mode, k)
			}
			derived := provDerived(t, res.Graph, "tr")
			if derived == 0 {
				t.Fatalf("mode=%v k=%d: no derived triples carry lineage", mode, k)
			}
		}
	}
}

// TestProvenanceWithoutLineageTransport: a transport that cannot carry
// lineage degrades shipped triples to asserted, but the run still closes
// and locally derived triples keep their records.
func TestProvenanceWithoutLineageTransport(t *testing.T) {
	f := newChainFixture(t, 10, 2)
	tr, err := transport.NewFile(t.TempDir(), f.dict)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	res, err := Run(Config{
		Engine:     reason.Forward{},
		Transport:  tr,
		Router:     ownerRouter{f.owner},
		Mode:       Concurrent,
		Provenance: true,
	}, f.assignments(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatal("closure mismatch over lineage-free transport")
	}
	if provDerived(t, res.Graph, "tr") == 0 {
		t.Fatal("no lineage survived at all; local derivations should keep theirs")
	}
}

// TestProvenanceSurvivesRecovery kills a worker mid-run with provenance on:
// the adopter replays the victim's checkpoints (MemCheckpoints carries
// lineage), and the aggregated closure still explains its derivations.
func TestProvenanceSurvivesRecovery(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	res, err := Run(Config{
		Engine:     reason.Forward{},
		Transport:  transport.NewMem(),
		Router:     ownerRouter{f.owner},
		Mode:       Concurrent,
		Provenance: true,
		Recovery:   &RecoveryConfig{},
		Inject: []*faultinject.Injector{
			nil,
			faultinject.New(faultinject.Config{CrashRound: 2}),
			nil,
		},
	}, f.assignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatalf("closure mismatch after recovery: got %d want %d", res.Graph.Len(), f.closed.Len())
	}
	if _, ok := res.Recovered[1]; !ok {
		t.Fatalf("worker 1 not recovered: %v", res.Recovered)
	}
	if provDerived(t, res.Graph, "tr") == 0 {
		t.Fatal("no derivations survived recovery with lineage")
	}
}

// TestDirCheckpointLineageRoundTrip pins the JSONL sidecar encoding.
func TestDirCheckpointLineageRoundTrip(t *testing.T) {
	dict := rdf.NewDict()
	a := dict.InternIRI("http://t/a")
	b := dict.InternIRI("http://t/b")
	c := dict.InternIRI("http://t/c")
	p := dict.InternIRI("http://t/p")
	st, err := NewDirCheckpoints(t.TempDir(), dict)
	if err != nil {
		t.Fatal(err)
	}
	in := []rdf.Lineage{{
		T:     rdf.Triple{S: a, P: p, O: c},
		Rule:  "tr",
		Round: 3,
		Prem:  []rdf.Triple{{S: a, P: p, O: b}, {S: b, P: p, O: c}},
	}}
	if err := st.SaveLineage(1, 3, in); err != nil {
		t.Fatal(err)
	}
	out, err := st.LoadLineage(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Rule != "tr" || out[0].Round != 3 ||
		out[0].T != in[0].T || len(out[0].Prem) != 2 ||
		out[0].Prem[0] != in[0].Prem[0] || out[0].Prem[1] != in[0].Prem[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if other, err := st.LoadLineage(2); err != nil || len(other) != 0 {
		t.Fatalf("worker 2 lineage = %v, %v", other, err)
	}
}
