package cluster

import (
	"testing"
	"time"

	"powl/internal/transport"
)

// TestSimulatedElapsedComposition: the simulated elapsed time must equal the
// sum of per-round maxima plus aggregation (the documented reconstruction).
func TestSimulatedElapsedComposition(t *testing.T) {
	f := newChainFixture(t, 20, 4)
	res := runModes(t, 4, transport.NewMem(), f, Simulated)
	var sum time.Duration
	for _, rs := range res.RoundStats {
		sum += rs.MaxWork + rs.MaxRecv
	}
	sum += res.PerWorker[0].Aggregate
	if res.Elapsed != sum {
		t.Fatalf("Elapsed %v != Σ round maxima + aggregate %v", res.Elapsed, sum)
	}
}

// TestSimulatedSyncIsGapToSlowest: per worker and round, Sync accumulates
// the distance to the slowest worker; the slowest worker of every round
// contributes zero, so the minimum total Sync must be zero when one worker
// is slowest in all rounds, and in general Σ(Reason+Send+Sync) per worker
// is equal across workers (everyone "finishes" each round together).
func TestSimulatedSyncIsGapToSlowest(t *testing.T) {
	f := newChainFixture(t, 24, 3)
	res := runModes(t, 3, transport.NewMem(), f, Simulated)
	var workPlusSync []time.Duration
	for _, tm := range res.PerWorker {
		// IO here includes both send and recv; recv is outside the barrier
		// in the reconstruction, so compare reason+sync+send-portion loosely:
		// reason+sync must not exceed the total simulated compute time.
		workPlusSync = append(workPlusSync, tm.Reason+tm.Sync)
	}
	// All workers' reason+sync should be within the recv slack of each
	// other (they align at each barrier).
	var min, max time.Duration
	for i, d := range workPlusSync {
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// The only asymmetry is the send-phase portion of IO; bound it by the
	// total IO observed.
	var maxIO time.Duration
	for _, tm := range res.PerWorker {
		if tm.IO > maxIO {
			maxIO = tm.IO
		}
	}
	if max-min > maxIO+time.Millisecond {
		t.Fatalf("barrier alignment violated: spread %v exceeds IO slack %v", max-min, maxIO)
	}
}

// TestDerivedCountsMatchUnion: the sum of per-worker derived counts is at
// least the number of union-level inferences (replication can only push it
// higher).
func TestDerivedCountsMatchUnion(t *testing.T) {
	f := newChainFixture(t, 16, 4)
	res := runModes(t, 4, transport.NewMem(), f, Simulated)
	base := 0
	for _, a := range f.assignments(4) {
		base += len(a.Base)
	}
	derived := 0
	for _, tm := range res.PerWorker {
		derived += tm.Derived
	}
	unionInferred := res.Graph.Len() - (16 - 1) // chain has n-1 base triples
	if derived < unionInferred {
		t.Fatalf("Σ derived %d < union inferences %d", derived, unionInferred)
	}
}

// TestSimulatedAndConcurrentAgree: both modes produce the identical closure
// and round count on the same fixture.
func TestSimulatedAndConcurrentAgree(t *testing.T) {
	f := newChainFixture(t, 18, 3)
	sim := runModes(t, 3, transport.NewMem(), f, Simulated)
	conc := runModes(t, 3, transport.NewMem(), f, Concurrent)
	if !sim.Graph.Equal(conc.Graph) {
		t.Fatal("modes disagree on closure")
	}
	if sim.Rounds != conc.Rounds {
		t.Fatalf("modes disagree on rounds: %d vs %d", sim.Rounds, conc.Rounds)
	}
}
