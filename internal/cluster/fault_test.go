package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

// faultyTransport wraps a real transport and fails the nth Send or Recv.
type faultyTransport struct {
	transport.Transport
	failSendAfter int
	failRecvAfter int
	sends         int
	recvs         int
}

func (f *faultyTransport) Send(round, from, to int, ts []rdf.Triple) error {
	f.sends++
	if f.failSendAfter > 0 && f.sends >= f.failSendAfter {
		return fmt.Errorf("injected send failure")
	}
	return f.Transport.Send(round, from, to, ts)
}

func (f *faultyTransport) Recv(round, to int) ([]rdf.Triple, error) {
	f.recvs++
	if f.failRecvAfter > 0 && f.recvs >= f.failRecvAfter {
		return nil, fmt.Errorf("injected recv failure")
	}
	return f.Transport.Recv(round, to)
}

// TestSendFailureAbortsRun: a failing transport must surface its error and
// not deadlock the barrier, in both modes.
func TestSendFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultyTransport{Transport: transport.NewMem(), failSendAfter: 1}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "injected send failure") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// TestRecvFailureAbortsRun: same for the receive path.
func TestRecvFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultyTransport{Transport: transport.NewMem(), failRecvAfter: 2}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "injected recv failure") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// slowRouter delays destinations computation to shake out races between
// workers under the race detector.
type slowRouter struct {
	inner Router
}

func (r slowRouter) Destinations(t rdf.Triple, from int) []int {
	time.Sleep(time.Microsecond)
	return r.inner.Destinations(t, from)
}

func TestConcurrentWorkersUnderContention(t *testing.T) {
	f := newChainFixture(t, 24, 6)
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    slowRouter{ownerRouter{f.owner}},
		Mode:      Concurrent,
	}, f.assignments(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatal("closure mismatch under contention")
	}
}
