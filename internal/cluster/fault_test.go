package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"powl/internal/faultinject"
	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

// transportMatrix yields a fresh instance of every transport kind for k
// workers, for fault-matrix tests (the seed suite only exercised Mem here).
func transportMatrix(t *testing.T, k int, dict *rdf.Dict) map[string]transport.Transport {
	t.Helper()
	file, err := transport.NewFile(t.TempDir(), dict)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := transport.NewTCP(k, dict)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]transport.Transport{
		"mem":  transport.NewMem(),
		"file": file,
		"tcp":  tcp,
	}
}

// TestSendFailureAbortsRun: an unretried transient failure must surface its
// error and not deadlock the barrier, in both modes — the seed's fail-stop
// contract still holds when no Retry wrapper is installed.
func TestSendFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultinject.Transport{
			Inner: transport.NewMem(),
			Inj:   faultinject.New(faultinject.Config{SendNth: 1}),
		}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "faultinject: send call 1") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// TestRecvFailureAbortsRun: same for the receive path.
func TestRecvFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultinject.Transport{
			Inner: transport.NewMem(),
			Inj:   faultinject.New(faultinject.Config{RecvNth: 2}),
		}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "faultinject: recv call 2") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// TestTransientFaultsRecoverAcrossTransports is the core fault matrix: on
// every transport kind, in both modes, a seeded schedule of transient
// send/recv faults is absorbed by the Retry wrapper and the run completes
// with the exact closure instead of aborting.
func TestTransientFaultsRecoverAcrossTransports(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		for name, inner := range transportMatrix(t, 3, f.dict) {
			inj := faultinject.New(faultinject.Config{
				Seed: 7, SendProb: 0.3, RecvProb: 0.3, MaxFaults: 6,
			})
			retry := transport.NewRetry(
				&faultinject.Transport{Inner: inner, Inj: inj},
				transport.RetryConfig{MaxAttempts: 8, BaseDelay: time.Microsecond, Seed: 7},
			)
			res, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: retry,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			if err != nil {
				t.Fatalf("mode=%v %s: run failed despite retry: %v", mode, name, err)
			}
			if !res.Graph.Equal(f.closed) {
				t.Fatalf("mode=%v %s: closure mismatch after faulty run", mode, name)
			}
			if inj.Faults() > 0 && retry.Retries() == 0 {
				t.Fatalf("mode=%v %s: %d faults injected but no retries recorded",
					mode, name, inj.Faults())
			}
			retry.Close()
		}
	}
}

// TestNthCallFaultRecovers: a deterministic nth-call fault (not probability)
// is also absorbed, on every transport.
func TestNthCallFaultRecovers(t *testing.T) {
	f := newChainFixture(t, 10, 3)
	for name, inner := range transportMatrix(t, 3, f.dict) {
		inj := faultinject.New(faultinject.Config{SendNth: 2, RecvNth: 3})
		retry := transport.NewRetry(
			&faultinject.Transport{Inner: inner, Inj: inj},
			transport.RetryConfig{BaseDelay: time.Microsecond},
		)
		res, err := Run(Config{
			Engine:    reason.Forward{},
			Transport: retry,
			Router:    ownerRouter{f.owner},
			Mode:      Concurrent,
		}, f.assignments(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Graph.Equal(f.closed) {
			t.Fatalf("%s: closure mismatch", name)
		}
		retry.Close()
	}
}

// malformedOnce fails the first Recv with a payload-corruption error, which
// Classify must treat as fatal: retrying corrupt bytes cannot help.
type malformedOnce struct {
	transport.Transport
	tripped bool
}

func (m *malformedOnce) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if !m.tripped {
		m.tripped = true
		return nil, fmt.Errorf("%w: bad frame", transport.ErrMalformed)
	}
	return m.Transport.Recv(ctx, round, to)
}

func TestMalformedPayloadIsNotRetried(t *testing.T) {
	f := newChainFixture(t, 8, 2)
	retry := transport.NewRetry(
		&malformedOnce{Transport: transport.NewMem()},
		transport.RetryConfig{BaseDelay: time.Microsecond},
	)
	_, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: retry,
		Router:    ownerRouter{f.owner},
		Mode:      Simulated,
	}, f.assignments(2))
	if !errors.Is(err, transport.ErrMalformed) {
		t.Fatalf("expected malformed-payload abort, got %v", err)
	}
	if retry.Retries() != 0 {
		t.Fatalf("fatal error was retried %d times", retry.Retries())
	}
}

// stuckTransport simulates a dead worker: every Send from stuckFrom blocks
// until the context fires.
type stuckTransport struct {
	transport.Transport
	stuckFrom int
}

func (s *stuckTransport) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if from == s.stuckFrom {
		<-ctx.Done()
		return ctx.Err()
	}
	return s.Transport.Send(ctx, round, from, to, ts)
}

// TestRoundDeadlineUnsticksBarrier: with one worker hung, the others are
// stuck at the barrier forever in the seed design; RoundTimeout must wake
// everyone with DeadlineExceeded instead.
func TestRoundDeadlineUnsticksBarrier(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	done := make(chan error, 1)
	go func() {
		_, err := Run(Config{
			Engine:       reason.Forward{},
			Transport:    &stuckTransport{Transport: transport.NewMem(), stuckFrom: 1},
			Router:       ownerRouter{f.owner},
			Mode:         Concurrent,
			RoundTimeout: 100 * time.Millisecond,
		}, f.assignments(3))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expected DeadlineExceeded, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("round deadline never fired; barrier stuck")
	}
}

// TestRunContextCancellation: cancelling the run context aborts a run whose
// workers are blocked mid-round.
func TestRunContextCancellation(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, Config{
			Engine:    reason.Forward{},
			Transport: &stuckTransport{Transport: transport.NewMem(), stuckFrom: 1},
			Router:    ownerRouter{f.owner},
			Mode:      Concurrent,
		}, f.assignments(3))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not end the run")
	}
}

// slowRouter delays destinations computation to shake out races between
// workers under the race detector.
type slowRouter struct {
	inner Router
}

func (r slowRouter) Destinations(t rdf.Triple, from int) []int {
	time.Sleep(time.Microsecond)
	return r.inner.Destinations(t, from)
}

func TestConcurrentWorkersUnderContention(t *testing.T) {
	f := newChainFixture(t, 24, 6)
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    slowRouter{ownerRouter{f.owner}},
		Mode:      Concurrent,
	}, f.assignments(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatal("closure mismatch under contention")
	}
}

// TestKillWorkerRecoversAcrossTransports is the recovery matrix: on every
// transport kind a worker is fail-stopped at round N with recovery armed;
// the survivors must finish with the closure of the serial fixpoint, and
// the journal must show the matching death and adoption.
func TestKillWorkerRecoversAcrossTransports(t *testing.T) {
	for _, crashRound := range []int{1, 2, 3} {
		f := newChainFixture(t, 12, 3)
		for name, tr := range transportMatrix(t, 3, f.dict) {
			sink := &obs.MemSink{}
			o := obs.NewRun(sink, nil)
			res, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      Concurrent,
				Obs:       o,
				Recovery:  &RecoveryConfig{},
				Inject: []*faultinject.Injector{
					nil,
					faultinject.New(faultinject.Config{CrashRound: crashRound}),
					nil,
				},
			}, f.assignments(3))
			if err != nil {
				t.Fatalf("crash=%d %s: run failed: %v", crashRound, name, err)
			}
			if !res.Graph.Equal(f.closed) {
				t.Fatalf("crash=%d %s: closure mismatch after recovery: got %d want %d",
					crashRound, name, res.Graph.Len(), f.closed.Len())
			}
			if adopter, ok := res.Recovered[1]; !ok {
				t.Fatalf("crash=%d %s: worker 1 not in Recovered %v", crashRound, name, res.Recovered)
			} else if adopter != 0 {
				t.Fatalf("crash=%d %s: expected lowest live worker 0 as adopter, got %d",
					crashRound, name, adopter)
			}
			assertDeathAndAdopt(t, sink.Events(), 1, 0)
			tr.Close()
		}
	}
}

// assertDeathAndAdopt checks the journal records the membership change:
// a death event for the victim naming the adopter, and an adoption event
// by the adopter naming the victim.
func assertDeathAndAdopt(t *testing.T, events []obs.Event, victim, adopter int) {
	t.Helper()
	var death, adopt bool
	for _, e := range events {
		switch e.Type {
		case obs.EvDeath:
			if e.Worker == victim && e.N == int64(adopter) {
				death = true
			}
		case obs.EvAdopt:
			if e.Worker == adopter && e.N == int64(victim) {
				adopt = true
			}
		}
	}
	if !death {
		t.Fatalf("journal missing death event for worker %d (adopter %d)", victim, adopter)
	}
	if !adopt {
		t.Fatalf("journal missing adopt event by worker %d of %d", adopter, victim)
	}
}

// TestKillWorkerRecoversSimulated: the same recovery semantics hold in
// Simulated mode, where deaths replay deterministically at round tops.
func TestKillWorkerRecoversSimulated(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	sink := &obs.MemSink{}
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    ownerRouter{f.owner},
		Mode:      Simulated,
		Obs:       obs.NewRun(sink, nil),
		Recovery:  &RecoveryConfig{},
		Inject: []*faultinject.Injector{
			nil,
			faultinject.New(faultinject.Config{CrashRound: 2}),
			nil,
		},
	}, f.assignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatalf("closure mismatch: got %d want %d", res.Graph.Len(), f.closed.Len())
	}
	if res.Recovered[1] != 0 {
		t.Fatalf("expected worker 0 to adopt 1, got %v", res.Recovered)
	}
	assertDeathAndAdopt(t, sink.Events(), 1, 0)
}

// TestKillTwoWorkersRecovers: a second death — including the case where the
// second victim is the first victim's adopter candidate — cascades onto the
// next live worker without losing either partition.
func TestKillTwoWorkersRecovers(t *testing.T) {
	f := newChainFixture(t, 16, 4)
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    ownerRouter{f.owner},
		Mode:      Concurrent,
		Obs:       nil,
		Recovery:  &RecoveryConfig{},
		Inject: []*faultinject.Injector{
			nil,
			faultinject.New(faultinject.Config{CrashRound: 1}),
			faultinject.New(faultinject.Config{CrashRound: 2}),
			nil,
		},
	}, f.assignments(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatalf("closure mismatch after two deaths: got %d want %d",
			res.Graph.Len(), f.closed.Len())
	}
	if res.Recovered[1] != 0 || res.Recovered[2] != 0 {
		t.Fatalf("expected worker 0 to adopt both victims, got %v", res.Recovered)
	}
}

// TestAllWorkersDeadIsUnrecoverable: when the last worker dies the run must
// error out rather than hang or return a partial closure.
func TestAllWorkersDeadIsUnrecoverable(t *testing.T) {
	f := newChainFixture(t, 8, 2)
	done := make(chan error, 1)
	go func() {
		_, err := Run(Config{
			Engine:    reason.Forward{},
			Transport: transport.NewMem(),
			Router:    ownerRouter{f.owner},
			Mode:      Concurrent,
			Recovery:  &RecoveryConfig{},
			Inject: []*faultinject.Injector{
				faultinject.New(faultinject.Config{CrashRound: 1}),
				faultinject.New(faultinject.Config{CrashRound: 1}),
			},
		}, f.assignments(2))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "all workers dead") {
			t.Fatalf("expected unrecoverable-run error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("all-dead run hung instead of erroring")
	}
}

// TestChaosRunTCP is the acceptance scenario: a 4-worker Concurrent run over
// the real TCP mesh with one worker killed mid-run and one connection
// severed. The run must finish with the serial-fixpoint closure and the
// journal must show the death, the adoption, and the link reconnection.
func TestChaosRunTCP(t *testing.T) {
	f := newChainFixture(t, 16, 4)
	tcp, err := transport.NewTCP(4, f.dict)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	sink := &obs.MemSink{}
	o := obs.NewRun(sink, nil)
	tcp.Obs = o.Transport()
	dropInj := faultinject.New(faultinject.Config{DropRound: 2, DropFrom: 0, DropTo: 1})
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: &faultinject.Transport{Inner: tcp, Inj: dropInj},
		Router:    ownerRouter{f.owner},
		Mode:      Concurrent,
		Obs:       o,
		Recovery:  &RecoveryConfig{},
		Inject: []*faultinject.Injector{
			nil, nil,
			faultinject.New(faultinject.Config{CrashRound: 2}),
			nil,
		},
	}, f.assignments(4))
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatalf("closure mismatch after chaos: got %d want %d (diff %v)",
			res.Graph.Len(), f.closed.Len(), f.closed.Diff(res.Graph))
	}
	if res.Recovered[2] != 0 {
		t.Fatalf("expected worker 0 to adopt 2, got %v", res.Recovered)
	}
	assertDeathAndAdopt(t, sink.Events(), 2, 0)
	if !dropInj.DropConnFired() {
		t.Fatal("scheduled connection drop never fired (0->1 never sent at drop round?)")
	}
	if tcp.Redials() == 0 {
		t.Fatal("dropped link never re-dialed")
	}
	var redialEvent bool
	for _, e := range sink.Events() {
		if e.Type == obs.EvRedial && e.Name == "0->1" && e.N > 0 {
			redialEvent = true
		}
	}
	if !redialEvent {
		t.Fatalf("journal missing redial event for 0->1")
	}
}
