package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"powl/internal/faultinject"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

// transportMatrix yields a fresh instance of every transport kind for k
// workers, for fault-matrix tests (the seed suite only exercised Mem here).
func transportMatrix(t *testing.T, k int, dict *rdf.Dict) map[string]transport.Transport {
	t.Helper()
	file, err := transport.NewFile(t.TempDir(), dict)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := transport.NewTCP(k, dict)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]transport.Transport{
		"mem":  transport.NewMem(),
		"file": file,
		"tcp":  tcp,
	}
}

// TestSendFailureAbortsRun: an unretried transient failure must surface its
// error and not deadlock the barrier, in both modes — the seed's fail-stop
// contract still holds when no Retry wrapper is installed.
func TestSendFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultinject.Transport{
			Inner: transport.NewMem(),
			Inj:   faultinject.New(faultinject.Config{SendNth: 1}),
		}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "faultinject: send call 1") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// TestRecvFailureAbortsRun: same for the receive path.
func TestRecvFailureAbortsRun(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		tr := &faultinject.Transport{
			Inner: transport.NewMem(),
			Inj:   faultinject.New(faultinject.Config{RecvNth: 2}),
		}
		done := make(chan error, 1)
		go func() {
			_, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: tr,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "faultinject: recv call 2") {
				t.Fatalf("mode=%v: expected injected failure, got %v", mode, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mode=%v: run deadlocked after transport failure", mode)
		}
	}
}

// TestTransientFaultsRecoverAcrossTransports is the core fault matrix: on
// every transport kind, in both modes, a seeded schedule of transient
// send/recv faults is absorbed by the Retry wrapper and the run completes
// with the exact closure instead of aborting.
func TestTransientFaultsRecoverAcrossTransports(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		f := newChainFixture(t, 12, 3)
		for name, inner := range transportMatrix(t, 3, f.dict) {
			inj := faultinject.New(faultinject.Config{
				Seed: 7, SendProb: 0.3, RecvProb: 0.3, MaxFaults: 6,
			})
			retry := transport.NewRetry(
				&faultinject.Transport{Inner: inner, Inj: inj},
				transport.RetryConfig{MaxAttempts: 8, BaseDelay: time.Microsecond, Seed: 7},
			)
			res, err := Run(Config{
				Engine:    reason.Forward{},
				Transport: retry,
				Router:    ownerRouter{f.owner},
				Mode:      mode,
			}, f.assignments(3))
			if err != nil {
				t.Fatalf("mode=%v %s: run failed despite retry: %v", mode, name, err)
			}
			if !res.Graph.Equal(f.closed) {
				t.Fatalf("mode=%v %s: closure mismatch after faulty run", mode, name)
			}
			if inj.Faults() > 0 && retry.Retries() == 0 {
				t.Fatalf("mode=%v %s: %d faults injected but no retries recorded",
					mode, name, inj.Faults())
			}
			retry.Close()
		}
	}
}

// TestNthCallFaultRecovers: a deterministic nth-call fault (not probability)
// is also absorbed, on every transport.
func TestNthCallFaultRecovers(t *testing.T) {
	f := newChainFixture(t, 10, 3)
	for name, inner := range transportMatrix(t, 3, f.dict) {
		inj := faultinject.New(faultinject.Config{SendNth: 2, RecvNth: 3})
		retry := transport.NewRetry(
			&faultinject.Transport{Inner: inner, Inj: inj},
			transport.RetryConfig{BaseDelay: time.Microsecond},
		)
		res, err := Run(Config{
			Engine:    reason.Forward{},
			Transport: retry,
			Router:    ownerRouter{f.owner},
			Mode:      Concurrent,
		}, f.assignments(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Graph.Equal(f.closed) {
			t.Fatalf("%s: closure mismatch", name)
		}
		retry.Close()
	}
}

// malformedOnce fails the first Recv with a payload-corruption error, which
// Classify must treat as fatal: retrying corrupt bytes cannot help.
type malformedOnce struct {
	transport.Transport
	tripped bool
}

func (m *malformedOnce) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if !m.tripped {
		m.tripped = true
		return nil, fmt.Errorf("%w: bad frame", transport.ErrMalformed)
	}
	return m.Transport.Recv(ctx, round, to)
}

func TestMalformedPayloadIsNotRetried(t *testing.T) {
	f := newChainFixture(t, 8, 2)
	retry := transport.NewRetry(
		&malformedOnce{Transport: transport.NewMem()},
		transport.RetryConfig{BaseDelay: time.Microsecond},
	)
	_, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: retry,
		Router:    ownerRouter{f.owner},
		Mode:      Simulated,
	}, f.assignments(2))
	if !errors.Is(err, transport.ErrMalformed) {
		t.Fatalf("expected malformed-payload abort, got %v", err)
	}
	if retry.Retries() != 0 {
		t.Fatalf("fatal error was retried %d times", retry.Retries())
	}
}

// stuckTransport simulates a dead worker: every Send from stuckFrom blocks
// until the context fires.
type stuckTransport struct {
	transport.Transport
	stuckFrom int
}

func (s *stuckTransport) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if from == s.stuckFrom {
		<-ctx.Done()
		return ctx.Err()
	}
	return s.Transport.Send(ctx, round, from, to, ts)
}

// TestRoundDeadlineUnsticksBarrier: with one worker hung, the others are
// stuck at the barrier forever in the seed design; RoundTimeout must wake
// everyone with DeadlineExceeded instead.
func TestRoundDeadlineUnsticksBarrier(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	done := make(chan error, 1)
	go func() {
		_, err := Run(Config{
			Engine:       reason.Forward{},
			Transport:    &stuckTransport{Transport: transport.NewMem(), stuckFrom: 1},
			Router:       ownerRouter{f.owner},
			Mode:         Concurrent,
			RoundTimeout: 100 * time.Millisecond,
		}, f.assignments(3))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expected DeadlineExceeded, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("round deadline never fired; barrier stuck")
	}
}

// TestRunContextCancellation: cancelling the run context aborts a run whose
// workers are blocked mid-round.
func TestRunContextCancellation(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, Config{
			Engine:    reason.Forward{},
			Transport: &stuckTransport{Transport: transport.NewMem(), stuckFrom: 1},
			Router:    ownerRouter{f.owner},
			Mode:      Concurrent,
		}, f.assignments(3))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not end the run")
	}
}

// slowRouter delays destinations computation to shake out races between
// workers under the race detector.
type slowRouter struct {
	inner Router
}

func (r slowRouter) Destinations(t rdf.Triple, from int) []int {
	time.Sleep(time.Microsecond)
	return r.inner.Destinations(t, from)
}

func TestConcurrentWorkersUnderContention(t *testing.T) {
	f := newChainFixture(t, 24, 6)
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    slowRouter{ownerRouter{f.owner}},
		Mode:      Concurrent,
	}, f.assignments(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatal("closure mismatch under contention")
	}
}
