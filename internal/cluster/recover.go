package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
	"powl/internal/transport"
)

// This file is the transport-generic recovery layer: the fscluster-only
// design of PR 1 (checkpoints + supervise + adopt), generalized so it works
// identically over Mem, File and TCP. Workers checkpoint their per-round
// deltas into a pluggable CheckpointStore; a failure detector watches
// barrier progress (and transport Health when the transport reports it);
// and when a worker dies, the lowest-numbered live worker adopts its
// partition — base tuples, checkpointed deltas, undelivered inbox, rules —
// and re-derives. Forward inference is deterministic and monotone, so the
// reconstructed state re-converges to the same closure as the serial
// fixpoint; receivers deduplicate re-routed triples through Graph.Add.

// CheckpointStore persists per-worker deltas so a dead worker's state can
// be replayed by its adopter. Implementations must be safe for concurrent
// use by all workers of a run.
type CheckpointStore interface {
	// Save appends one delta for the worker — the triples that entered its
	// graph during one phase of the given round.
	Save(worker, round int, delta []rdf.Triple) error
	// Load returns everything ever saved for the worker, any order.
	Load(worker int) ([]rdf.Triple, error)
}

// LineageCheckpointStore is implemented by checkpoint stores that persist
// derivation lineage alongside the triple deltas. Lineage records are
// self-contained (rdf.Lineage carries premise triples by value) and matched
// to replayed triples by value, so a store may return them in any order.
// Stores without the interface degrade recovery to lineage-free replay;
// the reconstructed closure is unaffected.
type LineageCheckpointStore interface {
	SaveLineage(worker, round int, lins []rdf.Lineage) error
	LoadLineage(worker int) ([]rdf.Lineage, error)
}

// MemCheckpoints is the in-process CheckpointStore — survives worker
// (goroutine) death, not process death. The default when RecoveryConfig
// does not supply a store.
type MemCheckpoints struct {
	mu     sync.Mutex
	deltas map[int][]rdf.Triple
	lins   map[int][]rdf.Lineage
}

// NewMemCheckpoints returns an empty in-memory store.
func NewMemCheckpoints() *MemCheckpoints {
	return &MemCheckpoints{deltas: map[int][]rdf.Triple{}}
}

// Save implements CheckpointStore.
func (s *MemCheckpoints) Save(worker, round int, delta []rdf.Triple) error {
	if len(delta) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deltas[worker] = append(s.deltas[worker], delta...)
	return nil
}

// Load implements CheckpointStore.
func (s *MemCheckpoints) Load(worker int) ([]rdf.Triple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rdf.Triple, len(s.deltas[worker]))
	copy(out, s.deltas[worker])
	return out, nil
}

// SaveLineage implements LineageCheckpointStore.
func (s *MemCheckpoints) SaveLineage(worker, round int, lins []rdf.Lineage) error {
	if len(lins) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lins == nil {
		s.lins = map[int][]rdf.Lineage{}
	}
	s.lins[worker] = append(s.lins[worker], lins...)
	return nil
}

// LoadLineage implements LineageCheckpointStore.
func (s *MemCheckpoints) LoadLineage(worker int) ([]rdf.Lineage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rdf.Lineage, len(s.lins[worker]))
	copy(out, s.lins[worker])
	return out, nil
}

// DirCheckpoints is the directory-backed CheckpointStore: each delta is one
// atomically-renamed N-Triples file, so checkpoints survive process death
// and can be inspected with any RDF tooling. File names carry worker,
// round and a store-wide sequence number.
type DirCheckpoints struct {
	dir  string
	dict *rdf.Dict

	mu  sync.Mutex
	seq int
}

// NewDirCheckpoints returns a store writing under dir (created if needed),
// interning through dict.
func NewDirCheckpoints(dir string, dict *rdf.Dict) (*DirCheckpoints, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	return &DirCheckpoints{dir: dir, dict: dict}, nil
}

// Save implements CheckpointStore: serialize, write to a temp name, rename —
// a crash mid-write leaves a .tmp file Load ignores, never a torn delta.
func (s *DirCheckpoints) Save(worker, round int, delta []rdf.Triple) error {
	if len(delta) == 0 {
		return nil
	}
	s.mu.Lock()
	s.seq++
	name := fmt.Sprintf("ckpt_w%02d_r%03d_s%04d.nt", worker, round, s.seq)
	s.mu.Unlock()
	var buf bytes.Buffer
	w := ntriples.NewWriter(&buf, s.dict)
	if err := w.WriteAll(delta); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// SaveLineage implements LineageCheckpointStore: one JSONL sidecar per
// delta (ntriples lineage codec), atomically renamed like the triple
// checkpoints.
func (s *DirCheckpoints) SaveLineage(worker, round int, lins []rdf.Lineage) error {
	if len(lins) == 0 {
		return nil
	}
	s.mu.Lock()
	s.seq++
	name := fmt.Sprintf("lin_w%02d_r%03d_s%04d.jsonl", worker, round, s.seq)
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := ntriples.WriteLineage(&buf, s.dict, lins); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, name))
}

// LoadLineage implements LineageCheckpointStore.
func (s *DirCheckpoints) LoadLineage(worker int) ([]rdf.Lineage, error) {
	files, err := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("lin_w%02d_r*.jsonl", worker)))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []rdf.Lineage
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		lins, rerr := ntriples.ReadLineage(fh, s.dict)
		fh.Close()
		if rerr != nil {
			return nil, fmt.Errorf("cluster: lineage %s: %w", filepath.Base(f), rerr)
		}
		out = append(out, lins...)
	}
	return out, nil
}

// Load implements CheckpointStore, deduplicating across deltas.
func (s *DirCheckpoints) Load(worker int) ([]rdf.Triple, error) {
	files, err := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("ckpt_w%02d_r*.nt", worker)))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	g := rdf.NewGraph()
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		_, rerr := ntriples.ReadGraph(fh, s.dict, g)
		fh.Close()
		if rerr != nil {
			return nil, fmt.Errorf("cluster: checkpoint %s: %w", filepath.Base(f), rerr)
		}
	}
	return g.Triples(), nil
}

// RecoveryConfig arms transport-generic worker recovery on a Config.
type RecoveryConfig struct {
	// Store persists per-worker per-round deltas; nil means a fresh
	// in-memory store (sufficient for goroutine death; use DirCheckpoints
	// to survive process death).
	Store CheckpointStore
	// RoundDeadline is how long a worker may trail the barrier frontier
	// before the detector declares it dead. It must comfortably exceed the
	// slowest single round. 0 means 2s.
	RoundDeadline time.Duration
	// Poll is the detector's check interval; 0 means 20ms.
	Poll time.Duration
}

func (rc RecoveryConfig) withDefaults() RecoveryConfig {
	if rc.Store == nil {
		rc.Store = NewMemCheckpoints()
	}
	if rc.RoundDeadline <= 0 {
		rc.RoundDeadline = 2 * time.Second
	}
	if rc.Poll <= 0 {
		rc.Poll = 20 * time.Millisecond
	}
	return rc
}

// errWorkerDead is the internal sentinel a worker returns when it steps
// aside — it crashed (injected) or was declared dead and its partition
// reassigned. The run continues without it; RunContext filters the
// sentinel out of the error set.
var errWorkerDead = errors.New("cluster: worker stepped aside (dead)")

// coordinator is the shared recovery state of one run: membership, barrier
// progress, adoption assignments. In Concurrent mode it backs the failure
// detector and resizes the barrier; in Simulated mode (bar == nil) deaths
// are replayed deterministically at round tops and the round loop simply
// skips dead workers.
type coordinator struct {
	store   CheckpointStore
	rc      RecoveryConfig
	bar     *barrier // nil in Simulated mode
	obs     *obs.Run
	assigns []Assignment

	mu         sync.Mutex
	live       []bool
	nLive      int
	cancels    []context.CancelFunc
	arrived    []int // last barrier round each worker reached
	frontier   int   // max over live workers of arrived[i]
	frontierAt time.Time
	pending    map[int][]int // adopter -> victims awaiting absorption
	owned      map[int][]int // worker -> partitions it absorbed (transitive)
	recovered  map[int]int   // victim -> final adopter
	err        error
}

//powl:ignore wallclock the failure detector compares real arrival times against real deadlines by design — detection latency is an operational property, not run output.
func newCoordinator(k int, rc RecoveryConfig, bar *barrier, o *obs.Run, assigns []Assignment) *coordinator {
	c := &coordinator{
		store: rc.Store, rc: rc, bar: bar, obs: o, assigns: assigns,
		live:       make([]bool, k),
		nLive:      k,
		cancels:    make([]context.CancelFunc, k),
		arrived:    make([]int, k),
		frontier:   -1,
		frontierAt: time.Now(),
		pending:    map[int][]int{},
		owned:      map[int][]int{},
		recovered:  map[int]int{},
	}
	for i := range c.live {
		c.live[i] = true
		c.arrived[i] = -1
	}
	return c
}

// isDead reports whether the worker has been declared dead. Nil-safe: with
// no coordinator nobody is ever dead.
func (c *coordinator) isDead(id int) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.live[id]
}

// atBarrier records that a worker reached the round's barrier — the
// progress signal the failure detector watches. Nil-safe.
//
//powl:ignore wallclock frontier arrival times exist only to feed the real-time failure detector.
func (c *coordinator) atBarrier(id, round int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if round > c.arrived[id] {
		c.arrived[id] = round
	}
	if round > c.frontier {
		c.frontier = round
		c.frontierAt = time.Now()
	}
}

// workerDied declares a worker dead (self-reported crash or detector
// verdict) and reassigns everything it was responsible for.
func (c *coordinator) workerDied(victim, round int, cause string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.declareDeadLocked(victim, round, cause)
}

func (c *coordinator) declareDeadLocked(victim, round int, cause string) {
	if !c.live[victim] {
		return
	}
	c.live[victim] = false
	c.nLive--
	if c.nLive == 0 {
		if c.err == nil {
			c.err = fmt.Errorf("cluster: unrecoverable: all workers dead (last: worker %d, %s, round %d)",
				victim, cause, round)
		}
		if c.bar != nil {
			c.bar.abort()
		}
		return
	}
	adopter := -1
	for i, l := range c.live {
		if l {
			adopter = i
			break
		}
	}
	// Everything the victim was responsible for moves to the adopter: its
	// own partition, the partitions it had already absorbed, and any deaths
	// assigned to it that it never got to absorb.
	moved := append([]int{victim}, c.owned[victim]...)
	moved = append(moved, c.pending[victim]...)
	delete(c.pending, victim)
	delete(c.owned, victim)
	have := map[int]bool{}
	for _, v := range c.pending[adopter] {
		have[v] = true
	}
	for _, v := range moved {
		if !have[v] {
			have[v] = true
			c.pending[adopter] = append(c.pending[adopter], v)
		}
		c.recovered[v] = adopter
	}
	if cancel := c.cancels[victim]; cancel != nil {
		cancel()
	}
	if c.bar != nil {
		// Shrink the barrier so the survivors' generation can complete, and
		// deposit a sentinel "sent" so the death round cannot read as
		// globally quiescent: the adopter needs at least one more round to
		// absorb the victim's state.
		c.bar.remove(1)
	}
	c.obs.Emit(obs.Event{Type: obs.EvDeath, TS: c.obs.Now(), Worker: victim,
		Round: round, Name: cause, N: int64(adopter)})
}

// takePending claims (and records as owned) the victims assigned to a
// worker. Nil-safe.
func (c *coordinator) takePending(id int) []int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	victims := c.pending[id]
	if len(victims) == 0 {
		return nil
	}
	delete(c.pending, id)
	c.owned[id] = append(c.owned[id], victims...)
	return victims
}

// recoveredMap snapshots victim -> adopter for the Result.
func (c *coordinator) recoveredMap() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int, len(c.recovered))
	for v, a := range c.recovered {
		out[v] = a
	}
	return out
}

// runErr returns the coordinator's unrecoverable-run error, if any.
func (c *coordinator) runErr() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// detect is the failure-detector loop (Concurrent mode): every Poll it
// declares dead any live worker that trails the barrier frontier while
// either the frontier has been stale past RoundDeadline (the survivors are
// stuck waiting on it) or the transport's Health view — when the transport
// reports one — has had no proof of life from it past RoundDeadline. A
// false positive is safe: the declared worker steps aside at its next
// coordination point and its partition is re-derived by the adopter.
//
//powl:ignore wallclock liveness deadlines are real time by definition; nothing here is stamped into run output.
func (c *coordinator) detect(ctx context.Context, tr transport.Transport) {
	hr, _ := tr.(transport.HealthReporter)
	ticker := time.NewTicker(c.rc.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var health map[int]time.Time
		if hr != nil {
			health = hr.Health()
		}
		now := time.Now()
		c.mu.Lock()
		if c.frontier >= 0 {
			frontierStale := now.Sub(c.frontierAt) > c.rc.RoundDeadline
			for i, l := range c.live {
				if !l || c.arrived[i] >= c.frontier {
					continue
				}
				healthStale := false
				if t, ok := health[i]; ok {
					healthStale = now.Sub(t) > c.rc.RoundDeadline
				}
				if frontierStale || healthStale {
					c.declareDeadLocked(i, c.frontier, "timeout")
				}
			}
		}
		c.mu.Unlock()
	}
}

// adoptPending absorbs any dead peers assigned to this worker: each
// victim's base partition, every checkpointed delta it saved before dying,
// its undelivered inbox, and its rules are merged into this worker's state,
// and the absorbed tuples seed the next incremental materialization.
// Already-routed knowledge (base, delivered inbox) is swallowed by advancing
// the shipping watermark past the adoption; checkpointed triples are queued
// in `reship` so the next send phase re-routes them — the victim may have
// died before its last sends completed, and receivers deduplicate through
// Graph.Add.
func (w *worker) adoptPending(ctx context.Context, cfg Config, round int) error {
	victims := w.coord.takePending(w.id)
	if len(victims) > 0 && w.reship == nil {
		w.reship = map[rdf.Triple]struct{}{}
	}
	// Lineage-capable stores/transports let the adopter keep the victim's
	// derivation records; without them the adoption degrades to lineage-free
	// replay and the triples read as asserted in the adopter's log.
	var linStore LineageCheckpointStore
	var linCarrier transport.LineageCarrier
	if w.graph.Prov() != nil && len(victims) > 0 {
		linStore, _ = w.coord.store.(LineageCheckpointStore)
		linCarrier, _ = cfg.Transport.(transport.LineageCarrier)
	}
	addAdopted := func(t rdf.Triple, vlin map[rdf.Triple]rdf.Lineage) bool {
		if lin, ok := vlin[t]; ok {
			return w.graph.AddWithLineage(t, lin)
		}
		return w.graph.Add(t)
	}
	for _, v := range victims {
		absorbed := 0
		for _, t := range w.coord.assigns[v].Base {
			// Base tuples were placed by the partitioner; never re-ship.
			delete(w.reship, t)
			if w.graph.Add(t) {
				w.received = append(w.received, t)
				absorbed++
			}
		}
		vlin := map[rdf.Triple]rdf.Lineage{}
		if linStore != nil {
			lins, err := linStore.LoadLineage(v)
			if err != nil {
				return fmt.Errorf("cluster: worker %d adopt %d lineage: %w", w.id, v, err)
			}
			for _, l := range lins {
				if _, ok := vlin[l.T]; !ok { // first derivation wins, like Add
					vlin[l.T] = l
				}
			}
		}
		ck, err := w.coord.store.Load(v)
		if err != nil {
			return fmt.Errorf("cluster: worker %d adopt %d: %w", w.id, v, err)
		}
		for _, t := range ck {
			if addAdopted(t, vlin) {
				w.received = append(w.received, t)
				absorbed++
				w.reship[t] = struct{}{}
			}
		}
		// Drain the victim's inbox from round 0: transports still hold the
		// undelivered rounds (and File re-serves delivered ones — harmless,
		// Add deduplicates). These were routed by live senders to every
		// destination, so they are global knowledge: never re-ship them, even
		// if a previous victim's checkpoint queued them.
		for r := 0; r <= round; r++ {
			in, err := cfg.Transport.Recv(ctx, r, v)
			if err != nil {
				return fmt.Errorf("cluster: worker %d adopt %d inbox round %d: %w", w.id, v, r, err)
			}
			inLin := vlin
			if linCarrier != nil {
				ls, lerr := linCarrier.RecvLineage(ctx, r, v)
				if lerr != nil {
					return fmt.Errorf("cluster: worker %d adopt %d lineage round %d: %w", w.id, v, r, lerr)
				}
				if len(ls) > 0 {
					inLin = make(map[rdf.Triple]rdf.Lineage, len(ls)+len(vlin))
					for t, l := range vlin {
						inLin[t] = l
					}
					for _, l := range ls {
						inLin[l.T] = l
					}
				}
			}
			for _, t := range in {
				delete(w.reship, t)
				if addAdopted(t, inLin) {
					w.received = append(w.received, t)
					absorbed++
				}
			}
		}
		for _, r := range w.coord.assigns[v].Rules {
			if !containsRule(w.rules, r) {
				w.rules = append(w.rules, r)
			}
		}
		w.adopted = append(w.adopted, v)
		cfg.Obs.Emit(obs.Event{Type: obs.EvAdopt, TS: cfg.Obs.Now(), Worker: w.id,
			Round: round, N: int64(v), N2: int64(absorbed)})
	}
	return nil
}

// containsRule reports whether rs already holds r (rule-partitioned victims
// may carry rules the adopter lacks; data partitioning shares one set).
func containsRule(rs []rules.Rule, r rules.Rule) bool {
	for _, x := range rs {
		if reflect.DeepEqual(x, r) {
			return true
		}
	}
	return false
}

// stepAsideOr converts an error into the step-aside sentinel when this
// worker has been declared dead — its context was cancelled and its
// partition reassigned, so the failure is expected and the run continues
// without it. Any other failure aborts the barrier and surfaces.
func (w *worker) stepAsideOr(bar *barrier, err error) error {
	if w.coord.isDead(w.id) {
		return errWorkerDead
	}
	bar.abort()
	return err
}
