package cluster

import (
	"context"
	"testing"
	"time"

	"powl/internal/faultinject"
	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

func testTriples(n int) (*rdf.Dict, []rdf.Triple) {
	dict := rdf.NewDict()
	p := dict.InternIRI("http://t/p")
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.Triple{
			S: dict.InternIRI("http://t/s"),
			P: p,
			O: dict.InternIRI(string(rune('a' + i))),
		}
	}
	return dict, ts
}

// TestCheckpointStores: both stores must return everything saved for a
// worker and nothing saved for others; DirCheckpoints must round-trip
// through its N-Triples files.
func TestCheckpointStores(t *testing.T) {
	dict, ts := testTriples(5)
	dir, err := NewDirCheckpoints(t.TempDir(), dict)
	if err != nil {
		t.Fatal(err)
	}
	for name, store := range map[string]CheckpointStore{
		"mem": NewMemCheckpoints(),
		"dir": dir,
	} {
		if err := store.Save(1, 0, ts[:2]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := store.Save(1, 1, ts[2:4]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := store.Save(2, 0, ts[4:]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := store.Load(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 4 {
			t.Fatalf("%s: worker 1 load = %d triples, want 4", name, len(got))
		}
		other, err := store.Load(3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(other) != 0 {
			t.Fatalf("%s: worker 3 should have no checkpoints, got %d", name, len(other))
		}
	}
}

// TestDirCheckpointsSurviveReopen: a directory store reopened on the same
// path (a restarted process) must still serve the old deltas.
func TestDirCheckpointsSurviveReopen(t *testing.T) {
	dict, ts := testTriples(3)
	dir := t.TempDir()
	s1, err := NewDirCheckpoints(dir, dict)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(0, 2, ts); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirCheckpoints(dir, dict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("reopened store served %d triples, want 3", len(got))
	}
}

// TestDetectorDeclaresLaggard: the failure detector must declare dead a
// worker that trails the barrier frontier past the deadline, cancel its
// context, assign its partition to the lowest live worker, and journal the
// death — all without any self-report from the victim.
func TestDetectorDeclaresLaggard(t *testing.T) {
	sink := &obs.MemSink{}
	o := obs.NewRun(sink, nil)
	rc := RecoveryConfig{RoundDeadline: 30 * time.Millisecond, Poll: 5 * time.Millisecond}.withDefaults()
	bar := newBarrier(3)
	coord := newCoordinator(3, rc, bar, o, make([]Assignment, 3))
	cancelled := make(chan struct{})
	_, cancel := context.WithCancel(context.Background())
	coord.cancels[2] = func() { cancel(); close(cancelled) }

	detCtx, detCancel := context.WithCancel(context.Background())
	defer detCancel()
	go coord.detect(detCtx, transport.NewMem())

	// Workers 0 and 1 make progress; worker 2 never arrives.
	for round := 0; round < 3; round++ {
		coord.atBarrier(0, round)
		coord.atBarrier(1, round)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !coord.isDead(2) {
		if time.Now().After(deadline) {
			t.Fatal("detector never declared the laggard dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-cancelled:
	case <-time.After(time.Second):
		t.Fatal("victim's context was not cancelled")
	}
	if got := coord.takePending(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("worker 0 should have victim 2 pending, got %v", got)
	}
	var death bool
	for _, e := range sink.Events() {
		if e.Type == obs.EvDeath && e.Worker == 2 && e.Name == "timeout" {
			death = true
		}
	}
	if !death {
		t.Fatal("journal missing timeout death event")
	}
}

// TestDetectorSparesProgressingWorkers: workers advancing with the frontier
// must never be declared dead, however long the run.
func TestDetectorSparesProgressingWorkers(t *testing.T) {
	rc := RecoveryConfig{RoundDeadline: 20 * time.Millisecond, Poll: 2 * time.Millisecond}.withDefaults()
	coord := newCoordinator(2, rc, newBarrier(2), nil, make([]Assignment, 2))
	detCtx, detCancel := context.WithCancel(context.Background())
	defer detCancel()
	go coord.detect(detCtx, transport.NewMem())
	for round := 0; round < 10; round++ {
		coord.atBarrier(0, round)
		coord.atBarrier(1, round)
		time.Sleep(10 * time.Millisecond)
	}
	if coord.isDead(0) || coord.isDead(1) {
		t.Fatal("detector killed a healthy worker")
	}
}

// TestBarrierRemove: shrinking the barrier while survivors wait must release
// the generation with the sentinel deposit included in the sum.
func TestBarrierRemove(t *testing.T) {
	bar := newBarrier(3)
	type res struct {
		sum int
		ok  bool
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func(n int) {
			sum, ok := bar.sync(n)
			results <- res{sum, ok}
		}(i + 1)
	}
	time.Sleep(20 * time.Millisecond) // let both arrive
	bar.remove(1)                     // third party died; deposit sentinel
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if !r.ok {
				t.Fatal("barrier aborted instead of resizing")
			}
			if r.sum != 1+2+1 {
				t.Fatalf("sum = %d, want 4 (1+2+sentinel)", r.sum)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("survivors stuck after remove")
		}
	}
	// The shrunk barrier must keep working at k=2.
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			sum, _ := bar.sync(5)
			done <- sum
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case sum := <-done:
			if sum != 10 {
				t.Fatalf("post-remove generation sum = %d, want 10", sum)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("post-remove generation stuck")
		}
	}
}

// TestRecoveryWithDirCheckpoints: the end-to-end kill test also passes with
// the directory-backed store (the deployment shape for process death).
func TestRecoveryWithDirCheckpoints(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	store, err := NewDirCheckpoints(t.TempDir(), f.dict)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    ownerRouter{f.owner},
		Mode:      Concurrent,
		Recovery:  &RecoveryConfig{Store: store},
		Inject: []*faultinject.Injector{
			nil,
			faultinject.New(faultinject.Config{CrashRound: 2}),
			nil,
		},
	}, f.assignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(f.closed) {
		t.Fatalf("closure mismatch with dir checkpoints: got %d want %d",
			res.Graph.Len(), f.closed.Len())
	}
}
