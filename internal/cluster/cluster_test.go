package cluster

import (
	"fmt"
	"testing"

	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
	"powl/internal/transport"
)

// chainFixture builds a transitive chain split across k workers by node
// ownership, so that closing it requires multiple exchange rounds.
type chainFixture struct {
	dict   *rdf.Dict
	p      rdf.ID
	nodes  []rdf.ID
	owner  map[rdf.ID]int
	rules  []rules.Rule
	closed *rdf.Graph // expected closure
}

func newChainFixture(t *testing.T, n, k int) *chainFixture {
	t.Helper()
	f := &chainFixture{dict: rdf.NewDict(), owner: map[rdf.ID]int{}}
	f.p = f.dict.InternIRI("http://t/p")
	f.nodes = make([]rdf.ID, n)
	full := rdf.NewGraph()
	for i := range f.nodes {
		f.nodes[i] = f.dict.InternIRI(fmt.Sprintf("http://t/n%02d", i))
		// Contiguous blocks: cuts only at block boundaries.
		f.owner[f.nodes[i]] = i * k / n
	}
	for i := 0; i+1 < n; i++ {
		full.Add(rdf.Triple{S: f.nodes[i], P: f.p, O: f.nodes[i+1]})
	}
	f.rules = rules.MustParse(
		"@prefix t: <http://t/> .\n[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]", f.dict)
	f.closed = reason.Closure(full, f.rules)
	return f
}

// assignments distributes the chain's base triples by ownership, as the data
// partitioner would.
func (f *chainFixture) assignments(k int) []Assignment {
	parts := make([][]rdf.Triple, k)
	for i := 0; i+1 < len(f.nodes); i++ {
		tr := rdf.Triple{S: f.nodes[i], P: f.p, O: f.nodes[i+1]}
		po := f.owner[tr.S]
		qo := f.owner[tr.O]
		parts[po] = append(parts[po], tr)
		if qo != po {
			parts[qo] = append(parts[qo], tr)
		}
	}
	out := make([]Assignment, k)
	for i := range out {
		out[i] = Assignment{Base: parts[i], Rules: f.rules}
	}
	return out
}

type ownerRouter struct {
	owner map[rdf.ID]int
}

func (r ownerRouter) Destinations(t rdf.Triple, from int) []int {
	var out []int
	if p, ok := r.owner[t.S]; ok && p != from {
		out = append(out, p)
	}
	if q, ok := r.owner[t.O]; ok && q != from && (len(out) == 0 || out[0] != q) {
		out = append(out, q)
	}
	return out
}

func runModes(t *testing.T, k int, tr transport.Transport, f *chainFixture, mode Mode) *Result {
	t.Helper()
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: tr,
		Router:    ownerRouter{f.owner},
		Mode:      mode,
	}, f.assignments(k))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChainClosesAcrossWorkers(t *testing.T) {
	for _, mode := range []Mode{Concurrent, Simulated} {
		for _, k := range []int{2, 3, 4} {
			f := newChainFixture(t, 12, k)
			res := runModes(t, k, transport.NewMem(), f, mode)
			if !res.Graph.Equal(f.closed) {
				t.Fatalf("mode=%v k=%d: closure %d != expected %d; missing=%v",
					mode, k, res.Graph.Len(), f.closed.Len(), f.closed.Diff(res.Graph))
			}
			if res.Rounds < 2 {
				t.Errorf("mode=%v k=%d: chain closure cannot finish in %d round", mode, k, res.Rounds)
			}
		}
	}
}

func TestAllTransports(t *testing.T) {
	for _, mk := range []func(*rdf.Dict) (transport.Transport, error){
		func(*rdf.Dict) (transport.Transport, error) { return transport.NewMem(), nil },
		func(d *rdf.Dict) (transport.Transport, error) { return transport.NewFile(t.TempDir(), d) },
		func(d *rdf.Dict) (transport.Transport, error) { return transport.NewTCP(3, d) },
	} {
		f := newChainFixture(t, 10, 3)
		tr, err := mk(f.dict)
		if err != nil {
			t.Fatal(err)
		}
		res := runModes(t, 3, tr, f, Concurrent)
		if !res.Graph.Equal(f.closed) {
			t.Fatalf("%s: closure mismatch", tr.Name())
		}
		tr.Close()
	}
}

func TestSingleWorkerDegeneratesToSerial(t *testing.T) {
	f := newChainFixture(t, 8, 1)
	res := runModes(t, 1, transport.NewMem(), f, Concurrent)
	if !res.Graph.Equal(f.closed) {
		t.Fatal("k=1 closure mismatch")
	}
	if res.Rounds != 1 {
		t.Fatalf("k=1 should terminate after 1 round, took %d", res.Rounds)
	}
	if res.PerWorker[0].Sent != 0 {
		t.Fatalf("k=1 sent %d triples", res.PerWorker[0].Sent)
	}
}

func TestTimingsArepopulated(t *testing.T) {
	f := newChainFixture(t, 16, 4)
	res := runModes(t, 4, transport.NewMem(), f, Simulated)
	for i, tm := range res.PerWorker {
		if tm.Reason <= 0 {
			t.Errorf("worker %d: zero reason time", i)
		}
		if tm.Rounds != res.Rounds {
			t.Errorf("worker %d: rounds %d != %d", i, tm.Rounds, res.Rounds)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed")
	}
	totalSent := 0
	for _, tm := range res.PerWorker {
		totalSent += tm.Sent
	}
	if totalSent == 0 {
		t.Error("no tuples exchanged on a cut chain")
	}
	if len(res.OutputSizes) != 4 {
		t.Error("output sizes missing")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("empty assignments accepted")
	}
	if _, err := Run(Config{}, make([]Assignment, 2)); err == nil {
		t.Error("nil engine/transport/router accepted")
	}
}

func TestMaxRoundsCapStopsRunaway(t *testing.T) {
	f := newChainFixture(t, 12, 3)
	res, err := Run(Config{
		Engine:    reason.Forward{},
		Transport: transport.NewMem(),
		Router:    ownerRouter{f.owner},
		Mode:      Simulated,
		MaxRounds: 1,
	}, f.assignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d with cap 1", res.Rounds)
	}
	// The result is incomplete (fine: the cap is a safety net).
	if res.Graph.Equal(f.closed) {
		t.Log("closure completed within cap (chain short enough); not an error")
	}
}

// TestBarrier exercises the reusable barrier directly.
func TestBarrier(t *testing.T) {
	b := newBarrier(3)
	results := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		go func(c int) {
			sum, ok := b.sync(c)
			if !ok {
				results <- -1
				return
			}
			results <- sum
		}(i)
	}
	for i := 0; i < 3; i++ {
		if got := <-results; got != 6 {
			t.Fatalf("barrier sum = %d, want 6", got)
		}
	}
	// Second generation reuses the barrier.
	for i := 0; i < 3; i++ {
		go func() {
			sum, _ := b.sync(1)
			results <- sum
		}()
	}
	for i := 0; i < 3; i++ {
		if got := <-results; got != 3 {
			t.Fatalf("second generation sum = %d, want 3", got)
		}
	}
}

func TestBarrierAbort(t *testing.T) {
	b := newBarrier(2)
	done := make(chan bool, 1)
	go func() {
		_, ok := b.sync(1)
		done <- ok
	}()
	b.abort()
	if ok := <-done; ok {
		t.Fatal("aborted barrier returned ok")
	}
	if _, ok := b.sync(1); ok {
		t.Fatal("sync after abort returned ok")
	}
}

// TestIncrementalRoundsMatchFull: a run whose engine supports incremental
// re-materialization produces the same closure as one that always
// re-materializes fully (hybrid vs a wrapper that hides the Incremental
// interface).
type fullOnlyEngine struct{ reason.Engine }

func TestIncrementalRoundsMatchFull(t *testing.T) {
	f := newChainFixture(t, 14, 4)
	fast := runModes(t, 4, transport.NewMem(), f, Simulated)

	res, err := Run(Config{
		Engine:    fullOnlyEngine{reason.Forward{}}, // Incremental hidden
		Transport: transport.NewMem(),
		Router:    ownerRouter{f.owner},
		Mode:      Simulated,
	}, f.assignments(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(fast.Graph) {
		t.Fatal("incremental and full-rematerialization runs disagree")
	}
}
