package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"powl/internal/ntriples"
	"powl/internal/rdf"
)

// queryRows renders result rows as terms for the wire. Kept small and
// schema-stable so loadgen and the CI smoke can assert on it.
type queryReply struct {
	Vars  []string   `json:"vars"`
	Rows  [][]string `json:"rows"`
	Epoch int        `json:"epoch"`
}

type insertReply struct {
	Accepted int `json:"accepted"`
}

type explainReply struct {
	Explanation *rdf.ExplainDoc `json:"explanation"`
	Epoch       int             `json:"epoch"`
}

type errorReply struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP surface:
//
//	POST /query   — body is the SPARQL-subset text; 200 with rows,
//	                503 shed/draining (Retry-After), 504 deadline/watchdog,
//	                400 parse error, 500 panic.
//	POST /insert  — body is N-Triples; 200 with the accepted count,
//	                503 while draining.
//	POST /delete  — body is N-Triples; the batch is retracted DRed-style
//	                by the writer. Same statuses as /insert.
//	POST /explain — body is one N-Triples statement; 200 with its
//	                derivation DAG (?depth= bounds the premise depth),
//	                404 when the triple is not in the served snapshot,
//	                501 when the KB was built without provenance; the
//	                admission-control statuses match /query.
//	GET  /stats   — Stats as JSON.
//	GET  /healthz — 200 "ok\n" while admitting, 503 while draining.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Query(r.Context(), string(body))
	if err != nil {
		switch {
		case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrWatchdog):
			writeErr(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			// Client went away; best-effort status, usually unseen.
			writeErr(w, 499, err)
		case strings.Contains(err.Error(), "panicked"):
			writeErr(w, http.StatusInternalServerError, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	reply := queryReply{Vars: resp.Result.Vars, Rows: make([][]string, 0, len(resp.Result.Rows)), Epoch: resp.Epoch}
	for _, row := range resp.Result.Rows {
		out := make([]string, len(row))
		for i, id := range row {
			out[i] = s.kb.Dict.Term(id).String()
		}
		reply.Rows = append(reply.Rows, out)
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleWrite(w, r, s.Insert)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleWrite(w, r, s.Delete)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request, submit func(context.Context, []rdf.Triple) error) {
	var ts []rdf.Triple
	rd := ntriples.NewReader(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	for {
		st, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		d := s.kb.Dict
		ts = append(ts, rdf.Triple{S: d.Intern(st.S), P: d.Intern(st.P), O: d.Intern(st.O)})
	}
	if err := submit(r.Context(), ts); err != nil {
		if errors.Is(err, ErrDraining) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusGatewayTimeout, err)
		return
	}
	writeJSON(w, http.StatusOK, insertReply{Accepted: len(ts)})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	depth := 0
	if d := r.URL.Query().Get("depth"); d != "" {
		depth, err = strconv.Atoi(d)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad depth %q: %w", d, err))
			return
		}
	}
	resp, err := s.Explain(r.Context(), string(body), depth)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNoProvenance):
			writeErr(w, http.StatusNotImplemented, err)
		case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeErr(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			writeErr(w, 499, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, explainReply{Explanation: resp.Doc, Epoch: resp.Epoch})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.gate.RLock()
	draining := s.draining
	s.gate.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprint(w, "ok\n")
}

// maxBodyBytes bounds request bodies; a query or batch beyond this is a
// client error, not a reason to exhaust server memory.
const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorReply{Error: err.Error()})
}
