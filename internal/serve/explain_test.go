package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// testKBProv is testKB with the provenance side-column on: the subclass
// closure derives (si type Person) from (si type Student) under rdfs9-style
// rules, so every individual has a one-level derivation to explain.
func testKBProv(nStudents int) *KB {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	for i := 0; i < nStudents; i++ {
		s := dict.InternIRI(fmt.Sprintf("http://t/s%d", i))
		base.Add(rdf.Triple{S: s, P: typ, O: student})
	}
	return BuildKBProv(dict, base)
}

func TestServeExplainDerivedTriple(t *testing.T) {
	s := newTestServer(t, testKBProv(3), Config{})
	defer s.Shutdown(context.Background())

	resp, err := s.Explain(context.Background(),
		`<http://t/s0> <`+vocab.RDFType+`> <http://t/Person> .`, 0)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	doc := resp.Doc
	if doc == nil || doc.Rule == "" {
		t.Fatalf("expected a derived root, got %+v", doc)
	}
	if len(doc.Premises) == 0 {
		t.Fatal("derived root has no premises")
	}
	// The premise chain must bottom out in asserted triples.
	var leaves int
	var walk func(d *rdf.ExplainDoc)
	walk = func(d *rdf.ExplainDoc) {
		if d.Rule == "" {
			leaves++
		}
		for _, p := range d.Premises {
			walk(p)
		}
	}
	walk(doc)
	if leaves == 0 {
		t.Fatal("no asserted leaves in the explanation")
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Completed != 1 {
		t.Fatalf("explain not accounted: %+v", st)
	}
}

func TestServeExplainMissAndNoProv(t *testing.T) {
	s := newTestServer(t, testKBProv(1), Config{})
	defer s.Shutdown(context.Background())
	if _, err := s.Explain(context.Background(),
		`<http://t/absent> <http://t/p> <http://t/absent> .`, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent triple: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Explain(context.Background(), `not a triple`, 0); err == nil ||
		errors.Is(err, ErrNotFound) {
		t.Fatalf("malformed statement: err = %v, want parse error", err)
	}

	plain := newTestServer(t, testKB(1), Config{})
	defer plain.Shutdown(context.Background())
	if _, err := plain.Explain(context.Background(),
		`<http://t/s0> <`+vocab.RDFType+`> <http://t/Person> .`, 0); !errors.Is(err, ErrNoProvenance) {
		t.Fatalf("no-prov KB: err = %v, want ErrNoProvenance", err)
	}
}

// TestServeExplainCoversInserts: a triple derived by the live writer path
// (incremental engine) must be explainable once its epoch is published.
func TestServeExplainCoversInserts(t *testing.T) {
	s := newTestServer(t, testKBProv(1), Config{})
	defer s.Shutdown(context.Background())
	d := s.Dict()
	typ := d.InternIRI(vocab.RDFType)
	student := d.InternIRI("http://t/Student")
	fresh := d.InternIRI("http://t/late")
	if err := s.Insert(context.Background(), []rdf.Triple{{S: fresh, P: typ, O: student}}); err != nil {
		t.Fatal(err)
	}
	stmt := `<http://t/late> <` + vocab.RDFType + `> <http://t/Person> .`
	deadline := 200
	for ; deadline > 0; deadline-- {
		if _, err := s.Explain(context.Background(), stmt, 0); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if deadline == 0 {
		t.Fatal("inserted individual's derived type never became explainable")
	}
	resp, err := s.Explain(context.Background(), stmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc := resp.Doc; doc.Rule == "" || len(doc.Premises) == 0 {
		t.Fatalf("live-derived triple not explained: %+v", doc)
	}
}

func TestHTTPExplainEndpoint(t *testing.T) {
	s := newTestServer(t, testKBProv(2), Config{})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stmt := `<http://t/s1> <` + vocab.RDFType + `> <http://t/Person> .`
	res, err := srv.Client().Post(srv.URL+"/explain", "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	var reply struct {
		Explanation *rdf.ExplainDoc `json:"explanation"`
		Epoch       int             `json:"epoch"`
	}
	if err := json.NewDecoder(res.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Explanation == nil || reply.Explanation.Rule == "" || len(reply.Explanation.Premises) == 0 {
		t.Fatalf("bad explanation payload: %+v", reply.Explanation)
	}

	miss, err := srv.Client().Post(srv.URL+"/explain", "text/plain",
		strings.NewReader(`<http://t/none> <http://t/p> <http://t/none> .`))
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != 404 {
		t.Fatalf("missing triple: status %d, want 404", miss.StatusCode)
	}

	bad, err := srv.Client().Post(srv.URL+"/explain?depth=x", "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("bad depth: status %d, want 400", bad.StatusCode)
	}
}

// TestStatsLatencyPercentiles: the query-latency percentiles must populate
// from real traffic without a registry, be ordered, and round-trip through
// the /stats JSON.
func TestStatsLatencyPercentiles(t *testing.T) {
	s := newTestServer(t, testKB(10), Config{})
	defer s.Shutdown(context.Background())
	for i := 0; i < 20; i++ {
		if _, err := s.Query(context.Background(), personQuery); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.QueryP50Ms <= 0 || st.QueryP95Ms <= 0 || st.QueryP99Ms <= 0 {
		t.Fatalf("percentiles not populated: %+v", st)
	}
	if st.QueryP50Ms > st.QueryP95Ms || st.QueryP95Ms > st.QueryP99Ms {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v",
			st.QueryP50Ms, st.QueryP95Ms, st.QueryP99Ms)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"query_p50_ms", "query_p95_ms", "query_p99_ms"} {
		v, ok := m[k].(float64)
		if !ok || v <= 0 {
			t.Fatalf("/stats %s = %v, want positive number", k, m[k])
		}
	}
}
