// Package loadgen drives mixed read/insert/delete workloads against a serve.Server
// — in-process or over HTTP — with deliberate chaos: pathological slow
// queries, arrival bursts that overflow admission, and (when the operator
// kills the server mid-run) unavailability windows it rides out with
// retries. It reports throughput, latency percentiles, and a correctness
// verdict.
//
// Correctness under churn works by namespace separation: every triple
// loadgen inserts lives under http://loadgen.powl/, so the canonical
// queries' answers over the base KB are invariant no matter how many insert
// or delete batches land, while a probe query over the loadgen namespace
// must observe the writer's epochs advancing. A canonical query returning
// the wrong row count — during bursts, drains, deletions, or right after a
// restart — is a correctness failure, not noise. The probe namespace never
// uses rdf:type or any canonical predicate, so even DISTINCT-class queries
// stay invariant under churn.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powl/internal/stats"
)

// Outcome sentinels a Client maps transport-specific failures onto.
var (
	// ErrOverloaded is a shed: the server refused under load. Expected
	// during bursts; never counted as a failure.
	ErrOverloaded = errors.New("loadgen: overloaded")
	// ErrTimeout is a deadline or watchdog cancellation. Expected for the
	// injected pathological queries.
	ErrTimeout = errors.New("loadgen: deadline")
	// ErrUnavailable is a connection failure or draining rejection —
	// expected while the server restarts; retried within RetryWindow.
	ErrUnavailable = errors.New("loadgen: unavailable")
)

// Client abstracts the wire: local (in-process Server) or HTTP.
type Client interface {
	// Query returns the row count, or one of the outcome sentinels
	// (possibly wrapped).
	Query(ctx context.Context, text string) (rows int, err error)
	// Insert submits an N-Triples batch.
	Insert(ctx context.Context, ntriples string) error
	// Delete retracts an N-Triples batch.
	Delete(ctx context.Context, ntriples string) error
}

// CheckedQuery is a canonical query with its invariant answer.
type CheckedQuery struct {
	Name string
	Text string
	Want int // expected row count, asserted on every successful run
}

// Options shapes the workload.
type Options struct {
	Workers  int           // concurrent client goroutines; 0 = 8
	Duration time.Duration // run length; 0 = 5s
	Seed     int64         // workload RNG seed

	Queries   []CheckedQuery // canonical read set (required)
	SlowQuery string         // pathological query text; "" disables injection
	SlowEvery int            // inject SlowQuery every n ops per worker; 0 = 50

	InsertEvery int // insert a probe batch every n ops per worker; 0 = 10
	InsertSize  int // triples per probe batch; 0 = 8

	// DeleteEvery enables churn: every n ops per worker, retract the oldest
	// probe batch this worker inserted beyond DeleteWindow. 0 disables
	// deletion entirely. With churn on, probe batches use the churn
	// predicate (see ChurnBatchPredicate) so a server seeded with the churn
	// axiom derives one marker per inserted triple and must DRed-retract it
	// on delete.
	DeleteEvery  int
	DeleteWindow int // live probe batches to keep per worker; 0 = 4

	BurstEvery time.Duration // fire a burst every interval; 0 disables
	BurstSize  int           // extra concurrent canonical queries per burst; 0 = 4×Workers

	RetryWindow time.Duration // how long to retry through unavailability; 0 = 10s
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.SlowEvery <= 0 {
		o.SlowEvery = 50
	}
	if o.InsertEvery <= 0 {
		o.InsertEvery = 10
	}
	if o.InsertSize <= 0 {
		o.InsertSize = 8
	}
	if o.BurstSize <= 0 {
		o.BurstSize = 4 * o.Workers
	}
	if o.DeleteWindow <= 0 {
		o.DeleteWindow = 4
	}
	if o.RetryWindow <= 0 {
		o.RetryWindow = 10 * time.Second
	}
	return o
}

// Report is the run's scorecard. Wrong must be zero for a correct server;
// Shed and Timeout are the degradation the chaos is designed to provoke.
type Report struct {
	Duration   time.Duration `json:"duration_ns"`
	Ops        int64         `json:"ops"`
	OK         int64         `json:"ok"`
	Wrong      int64         `json:"wrong"`
	Shed       int64         `json:"shed"`
	Timeout    int64         `json:"timeout"`
	Retried    int64         `json:"unavailable_retries"`
	Failed     int64         `json:"failed"` // unavailable beyond RetryWindow, or unexpected error
	Inserts    int64         `json:"insert_batches"`
	InsertedNT int64         `json:"inserted_triples"`
	Deletes    int64         `json:"delete_batches"`
	DeletedNT  int64         `json:"deleted_triples"`
	QPS        float64       `json:"qps"`
	P50Millis  float64       `json:"p50_ms"`
	P99Millis  float64       `json:"p99_ms"`
}

func (r Report) String() string {
	return fmt.Sprintf("ops=%d ok=%d wrong=%d shed=%d timeout=%d retried=%d failed=%d inserts=%d deletes=%d qps=%.0f p50=%.2fms p99=%.2fms",
		r.Ops, r.OK, r.Wrong, r.Shed, r.Timeout, r.Retried, r.Failed, r.Inserts, r.Deletes, r.QPS, r.P50Millis, r.P99Millis)
}

// Generator runs the workload.
type Generator struct {
	opts Options
	c    Client

	mu        sync.Mutex
	latencies []float64 // milliseconds, successful canonical queries only
	rep       Report
}

// New returns a Generator over c. Options.Queries must be non-empty.
func New(c Client, opts Options) *Generator {
	return &Generator{opts: opts.withDefaults(), c: c}
}

// ProbeQuery is the read side of the probe namespace: counts inserted
// marker triples. Its answer grows with the writer's epochs and never
// intersects the canonical queries' answers.
const ProbeQuery = `SELECT ?x ?b WHERE { ?x <http://loadgen.powl/marker> ?b . }`

// ChurnBatchPredicate is the predicate churn-mode probe batches assert.
// Pairing it with ChurnAxiom (on the server side) makes every churn insert
// derive a marker triple, so every churn delete exercises real DRed
// retraction — not just tombstoning an asserted leaf.
const ChurnBatchPredicate = "http://loadgen.powl/sub"

// ChurnMarkerPredicate is the probe marker predicate ProbeQuery counts.
const ChurnMarkerPredicate = "http://loadgen.powl/marker"

// ChurnAxiom is the schema triple an operator loads into the base KB to arm
// the churn drill: it turns ChurnBatchPredicate into a subproperty of the
// probe marker, so the reasoner derives one marker per churn triple.
const ChurnAxiom = "<" + ChurnBatchPredicate + "> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <" + ChurnMarkerPredicate + "> .\n"

// probeBatch renders one insert batch in the loadgen namespace. worker and
// seq make every subject unique so each accepted batch grows the probe
// answer by exactly size rows. Churn batches assert ChurnBatchPredicate
// instead of the marker directly.
func probeBatch(worker, seq, size int, churn bool) string {
	pred := "marker"
	if churn {
		pred = "sub"
	}
	var b []byte
	for i := 0; i < size; i++ {
		b = fmt.Appendf(b, "<http://loadgen.powl/w%d-s%d-i%d> <http://loadgen.powl/%s> <http://loadgen.powl/batch-%d-%d> .\n",
			worker, seq, i, pred, worker, seq)
	}
	return string(b)
}

// Run drives the workload until Options.Duration elapses or ctx is
// cancelled, then returns the scorecard.
func (g *Generator) Run(ctx context.Context) Report {
	ctx, cancel := context.WithTimeout(ctx, g.opts.Duration)
	defer cancel()
	//powl:ignore wallclock loadgen measures real elapsed time for QPS — operator-facing benchmark tooling, not reasoning state
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < g.opts.Workers; w++ {
		wg.Add(1)
		go g.worker(ctx, &wg, w)
	}
	if g.opts.BurstEvery > 0 {
		wg.Add(1)
		go g.burster(ctx, &wg)
	}
	wg.Wait()

	g.mu.Lock()
	defer g.mu.Unlock()
	//powl:ignore wallclock loadgen measures real elapsed time for QPS — operator-facing benchmark tooling, not reasoning state
	g.rep.Duration = time.Since(start)
	if secs := g.rep.Duration.Seconds(); secs > 0 {
		g.rep.QPS = float64(g.rep.OK) / secs
	}
	g.rep.P50Millis = stats.Percentile(g.latencies, 50)
	g.rep.P99Millis = stats.Percentile(g.latencies, 99)
	return g.rep
}

// worker is one closed-loop client: canonical reads, periodic probe
// inserts, periodic pathological queries.
func (g *Generator) worker(ctx context.Context, wg *sync.WaitGroup, id int) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(g.opts.Seed + int64(id)))
	seq := 0
	// live is this worker's FIFO of accepted churn batches; once it grows
	// past DeleteWindow, delete ops retract the oldest.
	var live []string
	for op := 0; ctx.Err() == nil; op++ {
		switch {
		case g.opts.SlowQuery != "" && op%g.opts.SlowEvery == g.opts.SlowEvery-1:
			g.runSlow(ctx)
		case g.opts.DeleteEvery > 0 && op%g.opts.DeleteEvery == g.opts.DeleteEvery-1 &&
			len(live) > g.opts.DeleteWindow:
			batch := live[0]
			live = live[1:]
			g.runDelete(ctx, batch)
		case op%g.opts.InsertEvery == g.opts.InsertEvery-1:
			seq++
			if batch, ok := g.runInsert(ctx, id, seq); ok && g.opts.DeleteEvery > 0 {
				live = append(live, batch)
			}
		default:
			q := g.opts.Queries[rng.Intn(len(g.opts.Queries))]
			g.runChecked(ctx, q)
		}
	}
}

// burster periodically fires BurstSize canonical queries at once — the
// arrival spike that must trip shedding rather than grow an unbounded
// queue.
func (g *Generator) burster(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(g.opts.BurstEvery)
	defer tick.Stop()
	rng := rand.New(rand.NewSource(g.opts.Seed ^ 0x5eed))
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			var bw sync.WaitGroup
			for i := 0; i < g.opts.BurstSize; i++ {
				q := g.opts.Queries[rng.Intn(len(g.opts.Queries))]
				bw.Add(1)
				go func() {
					defer bw.Done()
					g.runChecked(ctx, q)
				}()
			}
			bw.Wait()
		}
	}
}

// runChecked issues one canonical query, retrying through unavailability,
// and scores the outcome.
func (g *Generator) runChecked(ctx context.Context, q CheckedQuery) {
	//powl:ignore wallclock per-op latency sample for the percentile report — benchmark tooling
	start := time.Now()
	rows, err := g.queryRetry(ctx, q.Text)
	//powl:ignore wallclock per-op latency sample for the percentile report — benchmark tooling
	lat := time.Since(start)

	g.mu.Lock()
	defer g.mu.Unlock()
	g.rep.Ops++
	switch {
	case err == nil && rows == q.Want:
		g.rep.OK++
		g.latencies = append(g.latencies, float64(lat)/1e6)
	case err == nil:
		g.rep.Wrong++
	case errors.Is(err, ErrOverloaded):
		g.rep.Shed++
	case errors.Is(err, ErrTimeout):
		g.rep.Timeout++
	case ctx.Err() != nil:
		// Run ended mid-flight; not a server failure.
		g.rep.Ops--
	default:
		g.rep.Failed++
	}
}

func (g *Generator) runSlow(ctx context.Context) {
	_, err := g.c.Query(ctx, g.opts.SlowQuery)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rep.Ops++
	switch {
	case errors.Is(err, ErrTimeout):
		g.rep.Timeout++ // the expected fate: watchdog or deadline got it
	case errors.Is(err, ErrOverloaded):
		g.rep.Shed++
	case err == nil:
		g.rep.OK++ // finished inside the budget; fine
	case ctx.Err() != nil:
		g.rep.Ops--
	default:
		g.rep.Failed++
	}
}

// runInsert submits one probe batch; it returns the batch text and whether
// the server accepted it, so churn mode only ever deletes batches that
// actually landed.
func (g *Generator) runInsert(ctx context.Context, worker, seq int) (string, bool) {
	batch := probeBatch(worker, seq, g.opts.InsertSize, g.opts.DeleteEvery > 0)
	err := g.writeRetry(ctx, batch, g.c.Insert)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rep.Ops++
	switch {
	case err == nil:
		g.rep.Inserts++
		g.rep.InsertedNT += int64(g.opts.InsertSize)
		return batch, true
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrTimeout):
		g.rep.Shed++
	case ctx.Err() != nil:
		g.rep.Ops--
	default:
		g.rep.Failed++
	}
	return batch, false
}

// runDelete retracts one previously accepted probe batch.
func (g *Generator) runDelete(ctx context.Context, batch string) {
	err := g.writeRetry(ctx, batch, g.c.Delete)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rep.Ops++
	switch {
	case err == nil:
		g.rep.Deletes++
		g.rep.DeletedNT += int64(g.opts.InsertSize)
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrTimeout):
		g.rep.Shed++
	case ctx.Err() != nil:
		g.rep.Ops--
	default:
		g.rep.Failed++
	}
}

// queryRetry rides out unavailability (drain, restart) for up to
// RetryWindow, counting each retry.
func (g *Generator) queryRetry(ctx context.Context, text string) (int, error) {
	deadline := time.NewTimer(g.opts.RetryWindow)
	defer deadline.Stop()
	backoff := 10 * time.Millisecond
	for {
		rows, err := g.c.Query(ctx, text)
		if !errors.Is(err, ErrUnavailable) {
			return rows, err
		}
		g.mu.Lock()
		g.rep.Retried++
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-deadline.C:
			return 0, err
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// writeRetry drives one write (insert or delete) through the same
// unavailability-retry discipline as queryRetry.
func (g *Generator) writeRetry(ctx context.Context, batch string, do func(context.Context, string) error) error {
	deadline := time.NewTimer(g.opts.RetryWindow)
	defer deadline.Stop()
	backoff := 10 * time.Millisecond
	for {
		err := do(ctx, batch)
		if !errors.Is(err, ErrUnavailable) {
			return err
		}
		g.mu.Lock()
		g.rep.Retried++
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return err
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}
