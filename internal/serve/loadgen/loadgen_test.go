package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/serve"
	"powl/internal/vocab"
)

func testKB(nStudents int) *serve.KB {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	for i := 0; i < nStudents; i++ {
		s := dict.InternIRI(fmt.Sprintf("http://t/s%d", i))
		base.Add(rdf.Triple{S: s, P: typ, O: student})
	}
	return serve.BuildKB(dict, base)
}

// newTestServer wraps serve.New, failing the test on a validation error —
// the fixture rule set is expected to compile.
func newTestServer(t *testing.T, kb *serve.KB, cfg serve.Config) *serve.Server {
	t.Helper()
	s, err := serve.New(kb, cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return s
}

func canonical(n int) []CheckedQuery {
	return []CheckedQuery{
		{Name: "persons", Text: `SELECT ?x WHERE { ?x a <http://t/Person> . }`, Want: n},
		{Name: "students", Text: `SELECT ?x WHERE { ?x a <http://t/Student> . }`, Want: n},
	}
}

// TestLoadgenChaos is the in-process chaos drill: bursts overflow a tiny
// admission queue (shedding must trigger), pathological cross joins are
// injected (the watchdog must cancel them), probe inserts interleave with
// reads — all under -race via the Local client — and after the drain the
// server must have dropped nothing and the canonical answers must never
// have wavered.
func TestLoadgenChaos(t *testing.T) {
	const n = 300
	s := newTestServer(t, testKB(n), serve.Config{
		MaxInflight: 4,
		QueueDepth:  2, // tiny on purpose: bursts must shed
		Deadline:    2 * time.Second,
		SlowQuery:   25 * time.Millisecond,
	})

	g := New(Local{S: s}, Options{
		Workers:     8,
		Duration:    1500 * time.Millisecond,
		Seed:        42,
		Queries:     canonical(n),
		SlowQuery:   `SELECT ?x ?y WHERE { ?x a ?c . ?y a ?d . }`,
		SlowEvery:   40,
		InsertEvery: 15,
		BurstEvery:  200 * time.Millisecond,
		BurstSize:   64,
	})
	rep := g.Run(context.Background())
	t.Logf("loadgen: %s", rep)

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()

	if rep.OK == 0 {
		t.Fatal("no successful queries at all")
	}
	if rep.Wrong != 0 {
		t.Fatalf("wrong answers under chaos: %d", rep.Wrong)
	}
	if rep.Failed != 0 {
		t.Fatalf("unexpected failures: %d", rep.Failed)
	}
	if rep.Shed == 0 {
		t.Fatal("bursts never tripped shedding — admission control untested")
	}
	if st.Dropped != 0 {
		t.Fatalf("server dropped %d admitted queries", st.Dropped)
	}
	if st.WatchdogCancelled == 0 && rep.Timeout == 0 {
		t.Fatal("no slow query was ever cancelled — watchdog untested")
	}
	if rep.P99Millis >= 2000 {
		t.Fatalf("p99 = %.1fms, at or above the 2s deadline — degradation not graceful", rep.P99Millis)
	}
	// Probe inserts accepted by the server must all have been applied by
	// the drain: batches in stats == batches the writer published.
	if st.InsertBatches == 0 && rep.Inserts > 0 {
		t.Fatalf("loadgen had %d accepted inserts but the writer applied none", rep.Inserts)
	}
}

// churnKB is testKB plus the churn axiom: every probe triple asserted under
// the churn predicate derives a marker triple, so loadgen deletes force real
// DRed retraction cascades in the writer.
func churnKB(nStudents int) *serve.KB {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	for i := 0; i < nStudents; i++ {
		s := dict.InternIRI(fmt.Sprintf("http://t/s%d", i))
		base.Add(rdf.Triple{S: s, P: typ, O: student})
	}
	base.Add(rdf.Triple{
		S: dict.InternIRI(ChurnBatchPredicate),
		P: dict.InternIRI(vocab.RDFSSubPropertyOf),
		O: dict.InternIRI("http://loadgen.powl/marker"),
	})
	return serve.BuildKB(dict, base)
}

// TestLoadgenChurn is the sustained insert/delete churn drill: workers
// interleave canonical reads with probe inserts and window-lagged deletes of
// their own earlier batches, the churn axiom makes every insert derive a
// marker (so every delete is a DRed cascade, not a leaf tombstone), and the
// canonical answers must hold on every single read while the probe
// namespace churns underneath them.
func TestLoadgenChurn(t *testing.T) {
	const n = 200
	s := newTestServer(t, churnKB(n), serve.Config{
		MaxInflight: 4,
		Deadline:    2 * time.Second,
	})

	g := New(Local{S: s}, Options{
		Workers:      6,
		Duration:     1500 * time.Millisecond,
		Seed:         11,
		Queries:      canonical(n),
		InsertEvery:  4,
		InsertSize:   6,
		DeleteEvery:  7,
		DeleteWindow: 2,
	})
	rep := g.Run(context.Background())
	t.Logf("loadgen: %s", rep)

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()

	if rep.Wrong != 0 {
		t.Fatalf("canonical answers wavered under churn: wrong=%d", rep.Wrong)
	}
	if rep.Failed != 0 {
		t.Fatalf("unexpected failures under churn: %d", rep.Failed)
	}
	if rep.Deletes == 0 {
		t.Fatal("churn drill never deleted — DeleteEvery/DeleteWindow misconfigured")
	}
	if st.DeleteBatches != rep.Deletes {
		t.Fatalf("server applied %d delete batches, loadgen scored %d", st.DeleteBatches, rep.Deletes)
	}
	if st.Dropped != 0 {
		t.Fatalf("server dropped %d writes under churn", st.Dropped)
	}
	// The axiom makes each deleted probe triple take a derived marker with
	// it: retraction must exceed the asserted deletions alone.
	if st.RetractedTriples <= st.DeletedTriples {
		t.Fatalf("retracted %d <= deleted %d — DRed cascades never fired",
			st.RetractedTriples, st.DeletedTriples)
	}

	// The drained server's probe namespace must be exactly the surviving
	// batches: one derived marker per inserted-minus-deleted churn triple.
	marker := s.Dict().InternIRI("http://loadgen.powl/marker")
	got := s.Snapshot().Match(rdf.Wildcard, marker, rdf.Wildcard)
	want := int(rep.InsertedNT - rep.DeletedNT)
	if len(got) != want {
		t.Fatalf("probe markers after drain = %d, want %d (inserted %d - deleted %d)",
			len(got), want, rep.InsertedNT, rep.DeletedNT)
	}
}

// swapClient routes to whichever server is currently alive; Swap models a
// kill+restart. While the pointer is nil every call reports unavailability.
type swapClient struct {
	cur atomic.Pointer[serve.Server]
}

func (c *swapClient) get() (Local, error) {
	s := c.cur.Load()
	if s == nil {
		return Local{}, fmt.Errorf("%w: server down", ErrUnavailable)
	}
	return Local{S: s}, nil
}

func (c *swapClient) Query(ctx context.Context, text string) (int, error) {
	l, err := c.get()
	if err != nil {
		return 0, err
	}
	return l.Query(ctx, text)
}

func (c *swapClient) Insert(ctx context.Context, nt string) error {
	l, err := c.get()
	if err != nil {
		return err
	}
	return l.Insert(ctx, nt)
}

func (c *swapClient) Delete(ctx context.Context, nt string) error {
	l, err := c.get()
	if err != nil {
		return err
	}
	return l.Delete(ctx, nt)
}

// TestLoadgenKillRestart drains the server mid-run and brings up a fresh
// one: clients must ride out the gap on retries (ErrUnavailable), nothing
// in-flight may be dropped by either incarnation, and canonical answers
// must be correct on both sides of the restart.
func TestLoadgenKillRestart(t *testing.T) {
	const n = 200
	cfg := serve.Config{MaxInflight: 4, Deadline: 2 * time.Second}
	first := newTestServer(t, testKB(n), cfg)
	var c swapClient
	c.cur.Store(first)

	g := New(&c, Options{
		Workers:     6,
		Duration:    1500 * time.Millisecond,
		Seed:        7,
		Queries:     canonical(n),
		InsertEvery: 10,
		RetryWindow: 5 * time.Second,
	})

	var chaos sync.WaitGroup
	chaos.Add(1)
	var second *serve.Server
	go func() {
		defer chaos.Done()
		time.Sleep(400 * time.Millisecond)
		c.cur.Store(nil) // clients now see unavailability
		if err := first.Shutdown(context.Background()); err != nil {
			t.Errorf("first shutdown: %v", err)
		}
		time.Sleep(200 * time.Millisecond) // outage window
		s2, err := serve.New(testKB(n), cfg)
		if err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		second = s2
		c.cur.Store(second)
	}()

	rep := g.Run(context.Background())
	chaos.Wait()
	t.Logf("loadgen: %s", rep)

	if err := second.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if rep.Wrong != 0 {
		t.Fatalf("wrong answers across restart: %d", rep.Wrong)
	}
	if rep.Failed != 0 {
		t.Fatalf("failures across restart: %d (retries should have absorbed the outage)", rep.Failed)
	}
	if rep.Retried == 0 {
		t.Fatal("no retries recorded — the outage window was never observed")
	}
	if d := first.Stats().Dropped; d != 0 {
		t.Fatalf("first incarnation dropped %d", d)
	}
	if d := second.Stats().Dropped; d != 0 {
		t.Fatalf("second incarnation dropped %d", d)
	}
}
