package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"powl/internal/ntriples"
	"powl/internal/rdf"
	"powl/internal/serve"
)

// Local drives a serve.Server in-process — the -race chaos tests use it so
// readers, writer, and chaos all share one memory space under the detector.
type Local struct {
	S *serve.Server
}

// Query implements Client.
func (l Local) Query(ctx context.Context, text string) (int, error) {
	resp, err := l.S.Query(ctx, text)
	switch {
	case err == nil:
		return len(resp.Result.Rows), nil
	case errors.Is(err, serve.ErrShed):
		return 0, fmt.Errorf("%w: %v", ErrOverloaded, err)
	case errors.Is(err, serve.ErrDraining):
		return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, serve.ErrWatchdog):
		return 0, fmt.Errorf("%w: %v", ErrTimeout, err)
	default:
		return 0, err
	}
}

func (l Local) parse(nt string) ([]rdf.Triple, error) {
	var ts []rdf.Triple
	rd := ntriples.NewReader(strings.NewReader(nt))
	d := l.S.Dict()
	for {
		st, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, rdf.Triple{S: d.Intern(st.S), P: d.Intern(st.P), O: d.Intern(st.O)})
	}
	return ts, nil
}

func mapWriteErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, serve.ErrDraining):
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	default:
		return err
	}
}

// Insert implements Client.
func (l Local) Insert(ctx context.Context, nt string) error {
	ts, err := l.parse(nt)
	if err != nil {
		return err
	}
	return mapWriteErr(l.S.Insert(ctx, ts))
}

// Delete implements Client.
func (l Local) Delete(ctx context.Context, nt string) error {
	ts, err := l.parse(nt)
	if err != nil {
		return err
	}
	return mapWriteErr(l.S.Delete(ctx, ts))
}

// HTTP drives an owlserve instance over its HTTP surface — what the CI
// smoke uses, including across a kill+restart.
type HTTP struct {
	Base   string // e.g. http://127.0.0.1:7077
	Client *http.Client
}

func (h HTTP) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

type queryReply struct {
	Rows [][]string `json:"rows"`
}

// Query implements Client, mapping HTTP status onto the outcome sentinels:
// 503 → unavailable-or-overloaded (Retry-After distinguishes shed from
// draining only weakly, so shed maps to ErrOverloaded via the body), 504 →
// timeout, connection errors → unavailable.
func (h HTTP) Query(ctx context.Context, text string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+"/query", strings.NewReader(text))
	if err != nil {
		return 0, err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		// Stream-decode: replies can be huge (a pathological query that
		// beats the watchdog still returns its full cross product).
		var qr queryReply
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return 0, fmt.Errorf("loadgen: bad reply: %w", err)
		}
		return len(qr.Rows), nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		if strings.Contains(string(body), "shed") {
			return 0, fmt.Errorf("%w: %s", ErrOverloaded, body)
		}
		return 0, fmt.Errorf("%w: %s", ErrUnavailable, body)
	case http.StatusGatewayTimeout:
		return 0, fmt.Errorf("%w: %s", ErrTimeout, body)
	default:
		return 0, fmt.Errorf("loadgen: status %d: %s", resp.StatusCode, body)
	}
}

// Insert implements Client.
func (h HTTP) Insert(ctx context.Context, nt string) error {
	return h.write(ctx, "/insert", nt)
}

// Delete implements Client.
func (h HTTP) Delete(ctx context.Context, nt string) error {
	return h.write(ctx, "/delete", nt)
}

// write posts one N-Triples batch to path, mapping status codes onto the
// outcome sentinels the same way for inserts and deletes.
func (h HTTP) write(ctx context.Context, path, nt string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+path, strings.NewReader(nt))
	if err != nil {
		return err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, body)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", ErrTimeout, body)
	default:
		return fmt.Errorf("loadgen: status %d: %s", resp.StatusCode, body)
	}
}
