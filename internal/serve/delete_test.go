package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestServeDeleteVisibility deletes one student's type assertion and checks
// the DRed writer retracts its derived Person membership too — while a
// snapshot pinned before the delete keeps answering its original epoch.
func TestServeDeleteVisibility(t *testing.T) {
	kb := testKB(5)
	s := newTestServer(t, kb, Config{})
	defer s.Shutdown(context.Background())
	d := kb.Dict
	typ := d.InternIRI(vocab.RDFType)
	student := d.InternIRI("http://t/Student")
	person := d.InternIRI("http://t/Person")
	victim := d.InternIRI("http://t/s0")

	pinned := s.Snapshot()
	if !pinned.Has(rdf.Triple{S: victim, P: typ, O: person}) {
		t.Fatal("closure missing derived person triple")
	}

	if err := s.Delete(context.Background(), []rdf.Triple{{S: victim, P: typ, O: student}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	waitFor(t, "delete to publish", func() bool {
		resp, err := s.Query(context.Background(), personQuery)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return len(resp.Result.Rows) == 4
	})
	sn := s.Snapshot()
	if sn.Has(rdf.Triple{S: victim, P: typ, O: student}) ||
		sn.Has(rdf.Triple{S: victim, P: typ, O: person}) {
		t.Fatal("deleted assertion or its inference still visible")
	}

	// The pre-delete snapshot is pinned to its epoch: the deletion must not
	// reach into it.
	if !pinned.Has(rdf.Triple{S: victim, P: typ, O: student}) ||
		!pinned.Has(rdf.Triple{S: victim, P: typ, O: person}) {
		t.Fatal("pinned pre-delete snapshot lost triples")
	}

	st := s.Stats()
	if st.DeleteBatches != 1 || st.DeletedTriples != 1 || st.RetractedTriples < 2 {
		t.Fatalf("stats = %+v, want 1 delete batch, 1 deleted, >=2 retracted", st)
	}
}

// TestServeWriterPanicRecovery poisons one batch so the writer panics after
// its raw mutations: the previously published snapshot must stay untouched,
// the queue must keep draining (later batches apply), and Shutdown must
// still satisfy the drain contract.
func TestServeWriterPanicRecovery(t *testing.T) {
	kb := testKB(3)
	s := newTestServer(t, kb, Config{})
	d := kb.Dict
	typ := d.InternIRI(vocab.RDFType)
	student := d.InternIRI("http://t/Student")
	poison := d.InternIRI("http://t/poison")
	clean := d.InternIRI("http://t/clean")
	epoch0 := s.Snapshot().Watermark()

	s.writerHook = func(b writeBatch) {
		for _, tr := range b.ts {
			if tr.S == poison {
				panic("injected writer poison")
			}
		}
	}
	if err := s.Insert(context.Background(), []rdf.Triple{{S: poison, P: typ, O: student}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	waitFor(t, "writer panic", func() bool { return s.Stats().WriterPanics == 1 })

	// The panic struck after the raw insert but before publication: the
	// served epoch is exactly what it was.
	if sn := s.Snapshot(); sn.Watermark() != epoch0 {
		t.Fatalf("published epoch moved across a panicked batch: %d -> %d", epoch0, sn.Watermark())
	}
	if s.Snapshot().Has(rdf.Triple{S: poison, P: typ, O: student}) {
		t.Fatal("half-applied batch visible in the published snapshot")
	}

	// The queue is not wedged: a later clean batch applies and publishes.
	if err := s.Insert(context.Background(), []rdf.Triple{{S: clean, P: typ, O: student}}); err != nil {
		t.Fatalf("insert after panic: %v", err)
	}
	waitFor(t, "clean batch to publish", func() bool {
		return s.Snapshot().Has(rdf.Triple{S: clean, P: typ, O: student})
	})

	// Deletes survive a panicked predecessor the same way.
	if err := s.Delete(context.Background(), []rdf.Triple{{S: clean, P: typ, O: student}}); err != nil {
		t.Fatalf("delete after panic: %v", err)
	}
	waitFor(t, "delete after panic to publish", func() bool {
		return !s.Snapshot().Has(rdf.Triple{S: clean, P: typ, O: student})
	})

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	if st.WriterPanics != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want WriterPanics=1 Dropped=0", st)
	}
}

// TestServeCompaction drives enough deletions through a prov-enabled KB to
// trip the compaction threshold and checks the swapped-in graph serves the
// same answers — including Explain, which reads through the snapshot.
func TestServeCompaction(t *testing.T) {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	const n = 40
	for i := 0; i < n; i++ {
		base.Add(rdf.Triple{S: dict.InternIRI(fmt.Sprintf("http://t/s%d", i)), P: typ, O: student})
	}
	kb := BuildKBProv(dict, base)
	s := newTestServer(t, kb, Config{CompactRatio: 0.1, CompactMinDead: 1})
	defer s.Shutdown(context.Background())

	var batch []rdf.Triple
	for i := 0; i < n/2; i++ {
		batch = append(batch, rdf.Triple{S: dict.InternIRI(fmt.Sprintf("http://t/s%d", i)), P: typ, O: student})
	}
	if err := s.Delete(context.Background(), batch); err != nil {
		t.Fatalf("delete: %v", err)
	}
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 })

	resp, err := s.Query(context.Background(), personQuery)
	if err != nil || len(resp.Result.Rows) != n/2 {
		t.Fatalf("post-compaction query: rows=%d err=%v", len(resp.Result.Rows), err)
	}
	if s.Snapshot().Dead() != 0 {
		t.Fatalf("compacted snapshot still has %d tombstones", s.Snapshot().Dead())
	}
	// Lineage survived the offset remap: a surviving derived triple explains.
	stmt := fmt.Sprintf("<http://t/s%d> <%s> <http://t/Person> .", n-1, vocab.RDFType)
	er, err := s.Explain(context.Background(), stmt, 0)
	if err != nil {
		t.Fatalf("explain after compaction: %v", err)
	}
	if er.Doc.Rule == "" || len(er.Doc.Premises) == 0 {
		t.Fatalf("explanation lost its derivation after compaction: %+v", er.Doc)
	}

	// Inserts keep working against the swapped graph, including re-adding a
	// previously deleted individual.
	victim := dict.InternIRI("http://t/s0")
	if err := s.Insert(context.Background(), []rdf.Triple{{S: victim, P: typ, O: student}}); err != nil {
		t.Fatalf("insert after compaction: %v", err)
	}
	waitFor(t, "re-insert to publish", func() bool {
		return s.Snapshot().Has(rdf.Triple{S: victim, P: typ, O: person})
	})
}

// TestHTTPDeleteEndpoint drives /delete end to end and checks the stats
// surface reports it.
func TestHTTPDeleteEndpoint(t *testing.T) {
	kb := testKB(4)
	s := newTestServer(t, kb, Config{})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := "<http://t/s1> <" + vocab.RDFType + "> <http://t/Student> .\n"
	resp, err := srv.Client().Post(srv.URL+"/delete", "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post /delete: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/delete status = %d", resp.StatusCode)
	}
	d := kb.Dict
	tr := rdf.Triple{
		S: d.InternIRI("http://t/s1"),
		P: d.InternIRI(vocab.RDFType),
		O: d.InternIRI("http://t/Student"),
	}
	waitFor(t, "http delete to publish", func() bool { return !s.Snapshot().Has(tr) })
	if st := s.Stats(); st.DeleteBatches != 1 || st.DeletedTriples != 1 {
		t.Fatalf("stats = %+v, want one delete batch", st)
	}
}
