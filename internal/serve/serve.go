// Package serve is the live-serving layer over a materialized knowledge
// base: a long-running concurrent query server in which any number of
// readers evaluate SPARQL-subset queries against epoch-pinned MVCC
// snapshots (rdf.Snapshot) while a single writer goroutine applies insert
// batches through the incremental engine and publishes a fresh epoch after
// each batch — no stop-the-world, no read locks.
//
// Robustness is the point, not an afterthought:
//
//   - Admission control: a fixed number of execution slots plus a bounded
//     wait queue. When both are full, queries are shed immediately with
//     ErrShed — the queue can never grow without bound, and a shed client
//     learns its fate in microseconds instead of parking forever.
//   - Deadlines: every query runs under a context deadline (the server
//     default, tightened by whatever deadline the caller's ctx already
//     carries) that query.SolveContext checks throughout the join.
//   - Watchdog: a per-query timer cancels and journals queries that
//     overstay the slow-query threshold, so one pathological cross join
//     cannot monopolize a slot for its full deadline budget.
//   - Panic isolation: a panicking query is recovered, counted, journaled,
//     and converted into an error response; the server and every other
//     in-flight query keep running.
//   - Graceful drain: Shutdown stops admission (late arrivals get
//     ErrDraining), lets every admitted query finish, then flushes the
//     writer so no accepted insert — or delete — is lost. Stats.Dropped is
//     the drain contract: it must be zero after Shutdown returns.
//   - Writer survival: a panic while applying a batch is recovered on the
//     writer goroutine itself; the half-applied state is repaired and
//     rematerialized, the previously published snapshot stays untouched,
//     and the batch queue keeps draining.
//
// Deletion goes through the same single writer as insertion: Delete ships a
// batch that the writer retracts DRed-style (reason.Retractor) before
// publishing the next epoch, and once tombstones pass the configured ratio
// the writer compacts the log into a fresh graph — readers never pause,
// because old snapshots pin the old, immutable graph.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/owlhorst"
	"powl/internal/query"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

var (
	// ErrShed is returned when both the execution slots and the bounded
	// admission queue are full — explicit load shedding.
	ErrShed = errors.New("serve: overloaded, query shed")
	// ErrDraining is returned for work arriving after Shutdown began.
	ErrDraining = errors.New("serve: draining, not admitting")
	// ErrWatchdog wraps the error of a query the slow-query watchdog
	// cancelled — a server-side timeout, distinct from the caller's
	// context being cancelled.
	ErrWatchdog = errors.New("serve: cancelled by slow-query watchdog")
	// ErrNotFound is returned by Explain for a triple the served snapshot
	// does not contain.
	ErrNotFound = errors.New("serve: triple not in closure")
	// ErrNoProvenance is returned by Explain when the KB was built without
	// the provenance side-column.
	ErrNoProvenance = errors.New("serve: provenance not enabled")
)

// KB is the served knowledge base: the closure graph (single-writer), its
// dictionary (safe for concurrent interning), and the compiled instance
// rules the incremental engine closes insert batches under.
type KB struct {
	Dict  *rdf.Dict
	Graph *rdf.Graph
	Rules []rules.Rule
	// Threads is the intra-worker fan-out every writer-side closure
	// (load-time materialize, insert close, retraction rederive, crash
	// recovery) runs at. 0 or 1 keeps the serial engine.
	Threads int
}

// BuildKB compiles base's ontology, materializes the OWL-Horst closure, and
// returns the servable KB — the load-time reasoning the paper trades for
// cheap queries, packaged for serving.
func BuildKB(dict *rdf.Dict, base *rdf.Graph) *KB {
	return Build(dict, base, BuildConfig{})
}

// BuildKBProv is BuildKB with the derivation side-column enabled before
// materialization: every inferred triple (load-time and live-insert alike)
// records its rule, round and premises, and the server can answer Explain.
func BuildKBProv(dict *rdf.Dict, base *rdf.Graph) *KB {
	return Build(dict, base, BuildConfig{Prov: true})
}

// BuildConfig tunes KB construction.
type BuildConfig struct {
	// Prov enables the derivation side-column before materialization, so
	// the server can answer Explain and serve provenance-guided deletes.
	Prov bool
	// Threads is the intra-worker parallel fan-out for the load-time
	// materialize, carried into the KB for every later writer-side
	// closure. 0 or 1 keeps the serial engine.
	Threads int
}

// Build is the general KB constructor behind BuildKB/BuildKBProv.
func Build(dict *rdf.Dict, base *rdf.Graph, bc BuildConfig) *KB {
	compiled := owlhorst.Compile(dict, base)
	instance := owlhorst.SplitInstance(dict, base)
	g := rdf.NewGraphCap(2 * (len(instance) + compiled.Schema.Len()))
	if bc.Prov {
		g.EnableProv()
	}
	g.AddAll(instance)
	g.Union(compiled.Schema)
	reason.Forward{Threads: bc.Threads}.Materialize(g, compiled.InstanceRules)
	return &KB{Dict: dict, Graph: g, Rules: compiled.InstanceRules, Threads: bc.Threads}
}

// Config tunes the server's robustness envelope.
type Config struct {
	// MaxInflight is the number of queries executing concurrently;
	// 0 defaults to 8.
	MaxInflight int
	// QueueDepth bounds how many admitted-but-waiting queries may queue
	// beyond the execution slots; 0 defaults to 4×MaxInflight. Arrivals
	// beyond slots+queue are shed.
	QueueDepth int
	// Deadline is the per-query budget, covering queue wait and
	// execution; 0 defaults to 2s. A tighter deadline already on the
	// caller's context wins.
	Deadline time.Duration
	// SlowQuery is the watchdog threshold: a query still running after
	// this long is cancelled and journaled as an offender. 0 disables
	// the watchdog (the deadline still applies).
	SlowQuery time.Duration
	// InsertBuffer is the writer's batch channel capacity; 0 defaults
	// to 64. Insert blocks (honouring its ctx) when full — backpressure,
	// not unbounded buffering.
	InsertBuffer int
	// CompactRatio triggers log compaction after a delete batch once
	// dead/total exceeds it (and CompactMinDead is met). 0 defaults to
	// 0.25; negative disables compaction.
	CompactRatio float64
	// CompactMinDead is the tombstone floor below which compaction never
	// runs, whatever the ratio; 0 defaults to 4096.
	CompactMinDead int
	// Run receives journal events (may be nil). Reg receives metrics
	// (may be nil); the server keeps its own authoritative counters
	// either way.
	Run *obs.Run
	Reg *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.InsertBuffer <= 0 {
		c.InsertBuffer = 64
	}
	if c.CompactRatio == 0 {
		c.CompactRatio = 0.25
	}
	if c.CompactMinDead <= 0 {
		c.CompactMinDead = 4096
	}
	return c
}

// Stats is the server's authoritative accounting, readable at any time and
// final after Shutdown.
type Stats struct {
	Admitted          int64   `json:"admitted"`  // got an execution slot
	Completed         int64   `json:"completed"` // admitted queries that returned (any outcome)
	Shed              int64   `json:"shed"`      // rejected: slots and queue full
	DrainRejected     int64   `json:"drain_rejected"`
	QueueTimeout      int64   `json:"queue_timeout"` // gave up waiting in queue (ctx done)
	Panicked          int64   `json:"panicked"`
	WatchdogCancelled int64   `json:"watchdog_cancelled"`
	DeadlineExceeded  int64   `json:"deadline_exceeded"`
	InsertBatches     int64   `json:"insert_batches"`
	InsertedTriples   int64   `json:"inserted_triples"` // seeds accepted (pre-dedup)
	DerivedTriples    int64   `json:"derived_triples"`  // closure growth incl. seeds
	DeleteBatches     int64   `json:"delete_batches"`
	DeletedTriples    int64   `json:"deleted_triples"`   // requested triples found and removed
	RetractedTriples  int64   `json:"retracted_triples"` // total overdeleted (incl. cone)
	RederivedTriples  int64   `json:"rederived_triples"` // restored after overdeletion
	RetractTotalMs    float64 `json:"retract_total_ms"`  // cumulative writer time in Retract
	Compactions       int64   `json:"compactions"`
	CompactTotalMs    float64 `json:"compact_total_ms"` // cumulative writer pause compacting
	WriterPanics      int64   `json:"writer_panics"`
	Epoch             int64   `json:"epoch"`   // latest published watermark
	Dropped           int64   `json:"dropped"` // admitted - completed; must be 0 after drain
	// Query-latency percentiles in milliseconds, from the server's own
	// log2-bucket histogram (upper estimates, clamped to observed min/max;
	// see obs.HistSnapshot.Percentile). Zero until the first query.
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP95Ms float64 `json:"query_p95_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`
}

// Server is the live query/insert server. Create with New, serve queries
// with Query and inserts with Insert from any number of goroutines, and
// stop with Shutdown.
type Server struct {
	cfg Config
	kb  *KB

	snap atomic.Pointer[rdf.Snapshot]

	sem     chan struct{} // execution slots
	waiters chan struct{} // bounded admission queue

	gate     sync.RWMutex // guards draining against wg.Add races
	draining bool
	queries  sync.WaitGroup // admitted queries in flight
	inserts  sync.WaitGroup // Insert calls in flight

	batches  chan writeBatch
	writerWG sync.WaitGroup
	ret      *reason.Retractor // writer-goroutine only

	admitted, completed, shed, drainRejected, queueTimeout  atomic.Int64
	panicked, watchdogCancelled, deadlineExceeded           atomic.Int64
	insertBatches, insertedTriples, derivedTriples, dropped atomic.Int64
	deleteBatches, deletedTriples, retractedTriples         atomic.Int64
	rederivedTriples, compactions, compactNanos             atomic.Int64
	retractNanos                                            atomic.Int64
	writerPanics                                            atomic.Int64

	// registry mirrors (nil-safe no-ops when Reg is nil)
	gQueue, gInflight, gEpoch *obs.Gauge
	hLatency                  *obs.Histogram
	cAdmitted, cShed          *obs.Counter

	// testHook, when non-nil, runs inside the query's execution slot
	// before parsing — the seam the panic-isolation test injects through.
	testHook func(text string)
	// writerHook, when non-nil, runs on the writer goroutine after a
	// batch's raw mutations but before closure and publication — the seam
	// the writer-poisoning test injects through.
	writerHook func(b writeBatch)
}

// writeBatch is one unit of writer work: an insert batch or a delete batch.
type writeBatch struct {
	ts  []rdf.Triple
	del bool
}

// New starts a server over kb. The caller hands over ownership of kb.Graph:
// from here on only the server's writer goroutine mutates it. The rule set
// is validated up front: a rule the engines cannot compile (e.g. one
// exceeding their variable-slot budget) is an error here, not a panic in
// the writer loop after the server is live.
func New(kb *KB, cfg Config) (*Server, error) {
	if err := reason.ValidateRules(kb.Rules); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		kb:        kb,
		sem:       make(chan struct{}, cfg.MaxInflight),
		waiters:   make(chan struct{}, cfg.QueueDepth),
		batches:   make(chan writeBatch, cfg.InsertBuffer),
		ret:       reason.NewRetractor(kb.Rules),
		gQueue:    cfg.Reg.Gauge("serve.queue_depth"),
		gInflight: cfg.Reg.Gauge("serve.inflight"),
		gEpoch:    cfg.Reg.Gauge("serve.epoch"),
		hLatency:  cfg.Reg.Histogram("serve.query_latency"),
		cAdmitted: cfg.Reg.Counter("serve.admitted"),
		cShed:     cfg.Reg.Counter("serve.shed"),
	}
	if s.hLatency == nil {
		// Stats percentiles come from this histogram, so the server owns
		// one even without a registry.
		s.hLatency = &obs.Histogram{}
	}
	// A prov-free KB makes every DELETE fall back to delete-and-
	// rematerialize; the retractor journals each such degradation.
	s.ret.Obs = cfg.Run
	s.ret.Threads = kb.Threads
	sn := kb.Graph.Snapshot()
	s.snap.Store(&sn)
	s.gEpoch.Set(int64(sn.Watermark()))
	s.writerWG.Add(1)
	go s.writerLoop()
	s.cfg.Run.Emit(obs.Event{Type: obs.EvServe, TS: s.cfg.Run.Now(),
		Worker: obs.MasterWorker, Name: "start", N: int64(sn.Watermark())})
	return s, nil
}

// Snapshot returns the latest published epoch view — what a query admitted
// right now would see.
func (s *Server) Snapshot() rdf.Snapshot { return *s.snap.Load() }

// Dict exposes the KB dictionary (safe for concurrent interning).
func (s *Server) Dict() *rdf.Dict { return s.kb.Dict }

// Stats returns a consistent-enough point-in-time view of the accounting.
func (s *Server) Stats() Stats {
	lat := s.hLatency.Snapshot()
	ms := func(p float64) float64 {
		return float64(lat.Percentile(p)) / float64(time.Millisecond)
	}
	return Stats{
		QueryP50Ms:        ms(50),
		QueryP95Ms:        ms(95),
		QueryP99Ms:        ms(99),
		Admitted:          s.admitted.Load(),
		Completed:         s.completed.Load(),
		Shed:              s.shed.Load(),
		DrainRejected:     s.drainRejected.Load(),
		QueueTimeout:      s.queueTimeout.Load(),
		Panicked:          s.panicked.Load(),
		WatchdogCancelled: s.watchdogCancelled.Load(),
		DeadlineExceeded:  s.deadlineExceeded.Load(),
		InsertBatches:     s.insertBatches.Load(),
		InsertedTriples:   s.insertedTriples.Load(),
		DerivedTriples:    s.derivedTriples.Load(),
		DeleteBatches:     s.deleteBatches.Load(),
		DeletedTriples:    s.deletedTriples.Load(),
		RetractedTriples:  s.retractedTriples.Load(),
		RederivedTriples:  s.rederivedTriples.Load(),
		RetractTotalMs:    float64(s.retractNanos.Load()) / float64(time.Millisecond),
		Compactions:       s.compactions.Load(),
		CompactTotalMs:    float64(s.compactNanos.Load()) / float64(time.Millisecond),
		WriterPanics:      s.writerPanics.Load(),
		Epoch:             int64(s.snap.Load().Watermark()),
		Dropped:           s.admitted.Load() - s.completed.Load(),
	}
}

// QueryResponse carries a query's rows plus the epoch they are consistent
// with.
type QueryResponse struct {
	Result *query.Result
	Epoch  int
}

// Query admits, evaluates, and accounts one query. It is safe to call from
// any number of goroutines. The error reports the query's fate: ErrShed or
// ErrDraining without admission; a context error when the deadline,
// watchdog, or caller cancelled it; a parse or panic error otherwise.
func (s *Server) Query(ctx context.Context, text string) (QueryResponse, error) {
	//powl:ignore wallclock per-query deadline anchor and latency measurement for the serve metrics — operator-facing, never part of reasoning output
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Deadline)
	defer cancel()
	release, err := s.admit(ctx, start)
	if err != nil {
		return QueryResponse{}, err
	}
	defer release()
	return s.execute(ctx, cancel, text, start)
}

// admit runs the drain gate and admission control shared by every read
// endpoint: an execution slot immediately, else a bounded queue spot, else
// shed. On success the caller holds a slot and must call release() exactly
// once; admitted/completed accounting is handled here, so Dropped stays zero
// unless a caller genuinely never returns.
func (s *Server) admit(ctx context.Context, start time.Time) (release func(), err error) {
	// Drain gate: registering in-flight work and checking the drain flag
	// must be atomic with respect to Shutdown's flag-then-wait.
	s.gate.RLock()
	if s.draining {
		s.gate.RUnlock()
		s.drainRejected.Add(1)
		return nil, ErrDraining
	}
	s.queries.Add(1)
	s.gate.RUnlock()

	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.waiters <- struct{}{}:
			s.gQueue.Set(int64(len(s.waiters)))
			admitted := false
			select {
			case s.sem <- struct{}{}:
				admitted = true
			case <-ctx.Done():
			}
			<-s.waiters
			s.gQueue.Set(int64(len(s.waiters)))
			if !admitted {
				s.queueTimeout.Add(1)
				s.journalQuery("queue_timeout", start, 0)
				s.queries.Done()
				return nil, ctx.Err()
			}
		default:
			s.shed.Add(1)
			s.cShed.Add(1)
			s.journalQuery("shed", start, 0)
			s.queries.Done()
			return nil, ErrShed
		}
	}
	s.admitted.Add(1)
	s.cAdmitted.Add(1)
	s.gInflight.Set(int64(len(s.sem)))
	return func() {
		s.completed.Add(1)
		<-s.sem
		s.gInflight.Set(int64(len(s.sem)))
		s.queries.Done()
	}, nil
}

// execute runs the admitted query under watchdog and panic isolation.
func (s *Server) execute(ctx context.Context, cancel context.CancelFunc, text string, start time.Time) (resp QueryResponse, err error) {
	var wdFired atomic.Bool
	if s.cfg.SlowQuery > 0 {
		wd := time.AfterFunc(s.cfg.SlowQuery, func() {
			wdFired.Store(true)
			s.watchdogCancelled.Add(1)
			s.journalQuery("watchdog", start, 0)
			cancel()
		})
		defer wd.Stop()
	}
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Add(1)
			s.journalQuery("panic", start, 0)
			resp = QueryResponse{}
			err = fmt.Errorf("serve: query panicked: %v\n%s", r, debug.Stack())
		}
	}()

	if s.testHook != nil {
		s.testHook(text)
	}
	q, err := query.Parse(text, s.kb.Dict)
	if err != nil {
		s.journalQuery("parse_error", start, 0)
		return QueryResponse{}, err
	}
	sn := *s.snap.Load()
	res, err := q.SolveContext(ctx, sn)
	//powl:ignore wallclock latency observation for the serve histogram/journal — telemetry, not reasoning state
	lat := time.Since(start)
	s.hLatency.Observe(lat)
	switch {
	case err == nil:
		s.journalQuery("ok", start, int64(len(res.Rows)))
		return QueryResponse{Result: res, Epoch: sn.Watermark()}, nil
	case wdFired.Load():
		return QueryResponse{}, fmt.Errorf("%w after %v (%v)", ErrWatchdog, s.cfg.SlowQuery, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
		s.journalQuery("deadline", start, 0)
		return QueryResponse{}, err
	default:
		s.journalQuery("cancelled", start, 0)
		return QueryResponse{}, err
	}
}

// ExplainResponse carries one triple's derivation DAG plus the epoch it was
// cut at.
type ExplainResponse struct {
	Doc   *rdf.ExplainDoc
	Epoch int
}

// Explain resolves one N-Triples statement against the latest snapshot and
// returns its derivation DAG. It runs under the same admission control and
// deadline as Query — lineage walks are reads and compete for the same
// slots. maxDepth <= 0 uses rdf.DefaultExplainDepth. Returns ErrNotFound
// when the snapshot does not contain the triple and ErrNoProvenance when
// the KB records no lineage.
func (s *Server) Explain(ctx context.Context, stmt string, maxDepth int) (ExplainResponse, error) {
	//powl:ignore wallclock deadline anchor and latency measurement, as in Query — telemetry only
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Deadline)
	defer cancel()
	release, err := s.admit(ctx, start)
	if err != nil {
		return ExplainResponse{}, err
	}
	defer release()

	// The snapshot is loaded before anything else: s.kb.Graph is swapped by
	// the writer when it compacts, so all reads go through the pinned view.
	sn := *s.snap.Load()
	if !sn.ProvEnabled() {
		s.journalQuery("explain_unavailable", start, 0)
		return ExplainResponse{}, ErrNoProvenance
	}
	st, err := ntriples.NewReader(strings.NewReader(stmt)).Next()
	if err != nil {
		s.journalQuery("parse_error", start, 0)
		return ExplainResponse{}, fmt.Errorf("serve: parsing explain statement: %w", err)
	}
	d := s.kb.Dict
	t := rdf.Triple{S: d.Intern(st.S), P: d.Intern(st.P), O: d.Intern(st.O)}
	node, ok := sn.Explain(t, maxDepth)
	if !ok {
		s.journalQuery("explain_miss", start, 0)
		return ExplainResponse{}, ErrNotFound
	}
	//powl:ignore wallclock latency observation for the serve histogram — telemetry only
	s.hLatency.Observe(time.Since(start))
	s.journalQuery("explain_ok", start, 1)
	return ExplainResponse{Doc: rdf.NewExplainDoc(d, node), Epoch: sn.Watermark()}, nil
}

func (s *Server) journalQuery(outcome string, start time.Time, rows int64) {
	if s.cfg.Run == nil {
		return
	}
	//powl:ignore wallclock journal latency for a serve event — telemetry only
	dur := int64(time.Since(start))
	s.cfg.Run.Emit(obs.Event{Type: obs.EvQuery, TS: s.cfg.Run.Now(),
		Worker: obs.MasterWorker, Name: outcome,
		Dur: dur, N: rows})
}

// Insert hands a batch of triples to the writer. It blocks (honouring ctx)
// when the writer is InsertBuffer batches behind — backpressure instead of
// unbounded queueing. Accepted batches survive Shutdown: the writer drains
// its channel before exiting.
func (s *Server) Insert(ctx context.Context, ts []rdf.Triple) error {
	return s.submit(ctx, ts, false)
}

// Delete hands a batch of triples to the writer for DRed retraction: the
// requested triples are removed, inferences they supported are overdeleted,
// and everything still derivable from the surviving asserted set is
// restored before the next epoch is published. Same admission, drain and
// backpressure contract as Insert — an accepted delete batch is flushed
// before Shutdown returns.
func (s *Server) Delete(ctx context.Context, ts []rdf.Triple) error {
	return s.submit(ctx, ts, true)
}

func (s *Server) submit(ctx context.Context, ts []rdf.Triple, del bool) error {
	if len(ts) == 0 {
		return nil
	}
	s.gate.RLock()
	if s.draining {
		s.gate.RUnlock()
		return ErrDraining
	}
	s.inserts.Add(1)
	s.gate.RUnlock()
	defer s.inserts.Done()

	batch := make([]rdf.Triple, len(ts))
	copy(batch, ts)
	select {
	case s.batches <- writeBatch{ts: batch, del: del}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writerLoop is the single mutator of kb.Graph: it applies each batch —
// insert or delete — through the incremental engine and publishes the new
// epoch. A batch that panics mid-apply is recovered here: the writer
// repairs its private state, restores the closure fixpoint, and moves on to
// the next batch without ever publishing the half-applied epoch.
func (s *Server) writerLoop() {
	defer s.writerWG.Done()
	for batch := range s.batches {
		s.apply(batch)
	}
}

func (s *Server) apply(batch writeBatch) {
	defer func() {
		if r := recover(); r != nil {
			s.writerPanics.Add(1)
			s.cfg.Run.Emit(obs.Event{Type: obs.EvServe, TS: s.cfg.Run.Now(),
				Worker: obs.MasterWorker, Name: "writer_panic", N: 1})
			s.recoverWriter()
		}
	}()
	g := s.kb.Graph
	before := g.Len()
	if batch.del {
		if s.writerHook != nil {
			s.writerHook(batch)
		}
		//powl:ignore wallclock retraction pause measurement for the serve stats — telemetry only
		t0 := time.Now()
		st := s.ret.Retract(g, batch.ts)
		//powl:ignore wallclock retraction pause measurement for the serve stats — telemetry only
		s.retractNanos.Add(int64(time.Since(t0)))
		s.deleteBatches.Add(1)
		s.deletedTriples.Add(int64(st.Requested))
		s.retractedTriples.Add(int64(st.Overdeleted))
		s.rederivedTriples.Add(int64(st.Reinstated + st.Rederived + st.Propagated))
		s.maybeCompact()
	} else {
		seeds := batch.ts[:0]
		for _, t := range batch.ts {
			if g.Add(t) {
				seeds = append(seeds, t)
			}
		}
		if s.writerHook != nil {
			s.writerHook(batch)
		}
		if len(seeds) > 0 {
			// The graph was at fixpoint before the seeds went in, so closing
			// over just the seeds re-establishes it (semi-naive delta round).
			reason.Forward{Threads: s.kb.Threads}.MaterializeFrom(g, s.kb.Rules, seeds)
		}
		s.insertBatches.Add(1)
		s.insertedTriples.Add(int64(len(batch.ts)))
		s.derivedTriples.Add(int64(s.kb.Graph.Len() - before))
	}
	sn := s.kb.Graph.Snapshot()
	s.snap.Store(&sn)
	s.gEpoch.Set(int64(sn.Watermark()))
	s.cfg.Run.Emit(obs.Event{Type: obs.EvEpoch, TS: s.cfg.Run.Now(),
		Worker: obs.MasterWorker, N: int64(sn.Watermark()),
		N2: int64(s.kb.Graph.Len() - before)})
}

// maybeCompact rewrites the log without tombstones once the dead ratio
// passes the configured threshold. The old graph is never mutated — every
// snapshot pinned against it stays valid, and its memory is reclaimed when
// the last such snapshot is dropped. Writer-goroutine only.
func (s *Server) maybeCompact() {
	g := s.kb.Graph
	dead := g.Dead()
	if s.cfg.CompactRatio < 0 || dead < s.cfg.CompactMinDead ||
		float64(dead) < s.cfg.CompactRatio*float64(g.Len()) {
		return
	}
	//powl:ignore wallclock compaction pause measurement for the serve stats — telemetry only
	start := time.Now()
	s.kb.Graph = g.Compact()
	//powl:ignore wallclock compaction pause measurement for the serve stats — telemetry only
	pause := time.Since(start)
	s.compactions.Add(1)
	s.compactNanos.Add(int64(pause))
	s.cfg.Run.Emit(obs.Event{Type: obs.EvServe, TS: s.cfg.Run.Now(),
		Worker: obs.MasterWorker, Name: "compact",
		Dur: int64(pause), N: int64(dead)})
}

// recoverWriter repairs the graph after a mid-apply panic: the dedup map is
// rebuilt from the log (the only writer-private structure a torn mutation
// can corrupt — posting lists and the provenance column tolerate entries
// above the watermark by design), and the closure fixpoint every later
// batch assumes is restored by rematerializing. The previously published
// snapshot is left exactly as it was; the repaired state is only visible
// from the next successful batch's epoch on.
func (s *Server) recoverWriter() {
	g := s.kb.Graph
	g.RepairDedup()
	reason.Forward{Threads: s.kb.Threads}.Materialize(g, s.kb.Rules)
}

// Shutdown drains the server: new queries and inserts are refused with
// ErrDraining, every admitted query runs to completion, and every accepted
// insert batch is applied and published before the writer exits. Returns
// ctx.Err() if ctx expires first (the drain keeps going in the background;
// Stats continues to update).
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.Lock()
	already := s.draining
	s.draining = true
	s.gate.Unlock()
	if already {
		return nil
	}
	s.cfg.Run.Emit(obs.Event{Type: obs.EvServe, TS: s.cfg.Run.Now(),
		Worker: obs.MasterWorker, Name: "drain", N: int64(len(s.sem))})

	done := make(chan struct{})
	go func() {
		s.queries.Wait() // every admitted query finished
		s.inserts.Wait() // every Insert call delivered or gave up
		close(s.batches) // writer drains the backlog, then exits
		s.writerWG.Wait()
		s.cfg.Run.Emit(obs.Event{Type: obs.EvServe, TS: s.cfg.Run.Now(),
			Worker: obs.MasterWorker, Name: "drained",
			N: s.admitted.Load() - s.completed.Load()})
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
