package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/rules"
	"powl/internal/vocab"
)

// testKB builds a small ontology (Student ⊑ Person) plus nStudents typed
// individuals and materializes it — enough schema for the compiler to emit
// instance rules, enough data for queries to have stable answers.
func testKB(nStudents int) *KB {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	for i := 0; i < nStudents; i++ {
		s := dict.InternIRI(fmt.Sprintf("http://t/s%d", i))
		base.Add(rdf.Triple{S: s, P: typ, O: student})
	}
	return BuildKB(dict, base)
}

// newTestServer wraps New, failing the test on a validation error — every
// fixture rule set in this package is expected to compile.
func newTestServer(t *testing.T, kb *KB, cfg Config) *Server {
	t.Helper()
	s, err := New(kb, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

const (
	personQuery = `SELECT ?x WHERE { ?x a <http://t/Person> . }`
	// crossQuery is pathological: two patterns sharing no variable — a
	// full cross product over every typed individual.
	crossQuery = `SELECT ?x ?y WHERE { ?x a ?c . ?y a ?d . }`
)

func TestServeBasicQueryAndStats(t *testing.T) {
	s := newTestServer(t, testKB(10), Config{})
	defer s.Shutdown(context.Background())

	resp, err := s.Query(context.Background(), personQuery)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(resp.Result.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(resp.Result.Rows))
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeShedsUnderBurst pins the admission state machine: with 1 slot
// and queue depth 1, a slot-holder plus a queued waiter means every further
// arrival must shed immediately — not block, not queue.
func TestServeShedsUnderBurst(t *testing.T) {
	s := newTestServer(t, testKB(4), Config{MaxInflight: 1, QueueDepth: 1, Deadline: 5 * time.Second})
	defer s.Shutdown(context.Background())

	block := make(chan struct{})
	occupied := make(chan struct{})
	s.testHook = func(text string) {
		if strings.Contains(text, "BLOCKER") {
			close(occupied)
			<-block
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Query(context.Background(), personQuery+" # BLOCKER")
	}()
	<-occupied

	// Fill the one queue spot with a query that will wait.
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Query(context.Background(), personQuery)
		queued <- err
	}()
	// Wait until the waiter actually occupies the queue.
	for i := 0; len(s.waiters) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.waiters) == 0 {
		t.Fatal("waiter never queued")
	}

	// Slots full, queue full: these must shed instantly.
	for i := 0; i < 5; i++ {
		_, err := s.Query(context.Background(), personQuery)
		if !errors.Is(err, ErrShed) {
			t.Fatalf("arrival %d: err = %v, want ErrShed", i, err)
		}
	}
	close(block)
	wg.Wait()
	if err := <-queued; err != nil {
		t.Fatalf("queued query should have been admitted after release: %v", err)
	}
	st := s.Stats()
	if st.Shed != 5 {
		t.Fatalf("shed = %d, want 5", st.Shed)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", st.Dropped)
	}
}

// TestServeWatchdogCancelsSlowQuery runs a pathological cross join under a
// tight watchdog while healthy queries run alongside: the offender must be
// cancelled, the healthy queries unaffected.
func TestServeWatchdogCancelsSlowQuery(t *testing.T) {
	s := newTestServer(t, testKB(2000), Config{
		MaxInflight: 4, Deadline: 30 * time.Second, SlowQuery: 30 * time.Millisecond,
	})
	defer s.Shutdown(context.Background())

	done := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), crossQuery)
		done <- err
	}()
	// Healthy traffic keeps flowing while the offender burns its slot.
	for i := 0; i < 20; i++ {
		resp, err := s.Query(context.Background(), personQuery)
		if err != nil || len(resp.Result.Rows) != 2000 {
			t.Fatalf("healthy query %d: rows=%d err=%v", i, len(resp.Result.Rows), err)
		}
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cross join finished; watchdog never needed — enlarge fixture")
		}
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("offender err = %v, want ErrWatchdog", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never cancelled the cross join")
	}
	if st := s.Stats(); st.WatchdogCancelled == 0 {
		t.Fatalf("stats = %+v, want WatchdogCancelled > 0", st)
	}
}

// TestServePanicIsolation injects a panic into one query; the server, its
// accounting, and concurrent queries must all survive.
func TestServePanicIsolation(t *testing.T) {
	s := newTestServer(t, testKB(10), Config{MaxInflight: 4})
	defer s.Shutdown(context.Background())
	s.testHook = func(text string) {
		if strings.Contains(text, "BOOM") {
			panic("injected")
		}
	}
	_, err := s.Query(context.Background(), personQuery+" # BOOM")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
	resp, err := s.Query(context.Background(), personQuery)
	if err != nil || len(resp.Result.Rows) != 10 {
		t.Fatalf("server unhealthy after panic: rows=%d err=%v", len(resp.Result.Rows), err)
	}
	st := s.Stats()
	if st.Panicked != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want Panicked=1 Dropped=0", st)
	}
}

// TestServeInsertVisibility inserts a batch and waits for the writer to
// publish an epoch containing it — including derived triples (the inserted
// Student must become a Person via the compiled rules).
func TestServeInsertVisibility(t *testing.T) {
	kb := testKB(3)
	s := newTestServer(t, kb, Config{})
	defer s.Shutdown(context.Background())
	d := kb.Dict
	typ := d.InternIRI(vocab.RDFType)
	student := d.InternIRI("http://t/Student")
	novel := d.InternIRI("http://t/novel")
	if err := s.Insert(context.Background(), []rdf.Triple{{S: novel, P: typ, O: student}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		resp, err := s.Query(context.Background(), personQuery)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if len(resp.Result.Rows) == 4 {
			break // derived triple visible: insert closed under the rules
		}
		select {
		case <-deadline:
			t.Fatalf("derived triple never became visible; rows=%d", len(resp.Result.Rows))
		case <-time.After(time.Millisecond):
		}
	}
}

// TestServeRejectsUncompilableRules pins the validation contract: a KB
// whose rule set the engines cannot compile (here a rule binding more
// variables than the 64 join slots) must be refused by New with an error —
// not crash the writer loop after the server is live.
func TestServeRejectsUncompilableRules(t *testing.T) {
	kb := testKB(1)
	wide := rules.Rule{Name: "too-wide"}
	for v := 0; v < 66; v += 3 {
		wide.Body = append(wide.Body, rules.Atom{
			S: rules.Var(fmt.Sprintf("v%d", v)),
			P: rules.Var(fmt.Sprintf("v%d", v+1)),
			O: rules.Var(fmt.Sprintf("v%d", v+2)),
		})
	}
	wide.Head = []rules.Atom{{S: rules.Var("v0"), P: rules.Var("v1"), O: rules.Var("v2")}}
	kb.Rules = append(kb.Rules, wide)
	if _, err := New(kb, Config{}); err == nil {
		t.Fatal("New accepted a rule set the engines cannot compile")
	}
}

// TestServeInsertVisibilityThreaded is TestServeInsertVisibility with the
// writer's closures running the parallel fire loop: the KB carries
// Threads=4 into every MaterializeFrom the writer issues, and the derived
// triple must become visible exactly as in the serial case.
func TestServeInsertVisibilityThreaded(t *testing.T) {
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	sub := dict.InternIRI(vocab.RDFSSubClassOf)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: sub, O: person})
	for i := 0; i < 3; i++ {
		base.Add(rdf.Triple{S: dict.InternIRI(fmt.Sprintf("http://t/s%d", i)), P: typ, O: student})
	}
	kb := Build(dict, base, BuildConfig{Threads: 4})
	s := newTestServer(t, kb, Config{})
	defer s.Shutdown(context.Background())
	novel := dict.InternIRI("http://t/novel")
	if err := s.Insert(context.Background(), []rdf.Triple{{S: novel, P: typ, O: student}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		resp, err := s.Query(context.Background(), personQuery)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if len(resp.Result.Rows) == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("derived triple never became visible; rows=%d", len(resp.Result.Rows))
		case <-time.After(time.Millisecond):
		}
	}
}

// TestServeDrain starts in-flight queries and inserts, shuts down, and
// checks the drain contract: everything admitted completes (Dropped == 0),
// accepted inserts are applied, late arrivals get ErrDraining.
func TestServeDrain(t *testing.T) {
	kb := testKB(50)
	s := newTestServer(t, kb, Config{MaxInflight: 4, Deadline: 10 * time.Second})

	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.testHook = func(text string) {
		if strings.Contains(text, "HOLD") {
			started <- struct{}{}
			<-release
		}
	}
	var inflight sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < 3; i++ {
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			resp, err := s.Query(context.Background(), personQuery+" # HOLD")
			// 50 before the pre-drain insert's epoch, 51 after — each query
			// pins whichever epoch is current when it resumes; both are
			// consistent answers.
			if err == nil && (len(resp.Result.Rows) == 50 || len(resp.Result.Rows) == 51) {
				okCount.Add(1)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		<-started
	}
	// An insert accepted before the drain begins must survive it.
	d := kb.Dict
	typ := d.InternIRI(vocab.RDFType)
	student := d.InternIRI("http://t/Student")
	pre := d.InternIRI("http://t/pre-drain")
	if err := s.Insert(context.Background(), []rdf.Triple{{S: pre, P: typ, O: student}}); err != nil {
		t.Fatalf("pre-drain insert: %v", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()

	// Shutdown must refuse new work while in-flight queries still hold slots.
	for i := 0; i < 100; i++ {
		if _, err := s.Query(context.Background(), personQuery); errors.Is(err, ErrDraining) {
			break
		}
		time.Sleep(time.Millisecond)
		if i == 99 {
			t.Fatal("drain never started refusing queries")
		}
	}
	if err := s.Insert(context.Background(), nil); err != nil {
		t.Fatalf("zero-length insert should be a no-op, got %v", err)
	}
	if err := s.Insert(context.Background(), []rdf.Triple{{S: pre, P: typ, O: student}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("insert during drain: err = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	inflight.Wait()
	if okCount.Load() != 3 {
		t.Fatalf("only %d of 3 in-flight queries completed correctly through the drain", okCount.Load())
	}
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d after drain, want 0", st.Dropped)
	}
	// The pre-drain insert must have been applied before the writer exited:
	// the published snapshot contains both the seed and its derived Person.
	sn := s.Snapshot()
	person := d.InternIRI("http://t/Person")
	if !sn.Has(rdf.Triple{S: pre, P: typ, O: student}) || !sn.Has(rdf.Triple{S: pre, P: typ, O: person}) {
		t.Fatal("pre-drain insert (or its closure) missing from final snapshot")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServeQueueTimeout pins the queue-wait path: a waiter whose deadline
// expires before a slot frees must leave with the ctx error and be counted,
// not linger in the queue.
func TestServeQueueTimeout(t *testing.T) {
	s := newTestServer(t, testKB(4), Config{MaxInflight: 1, QueueDepth: 4, Deadline: 50 * time.Millisecond})
	defer s.Shutdown(context.Background())
	block := make(chan struct{})
	occupied := make(chan struct{})
	s.testHook = func(text string) {
		if strings.Contains(text, "BLOCKER") {
			close(occupied)
			<-block
		}
	}
	done := make(chan struct{})
	go func() {
		s.Query(context.Background(), personQuery+" # BLOCKER")
		close(done)
	}()
	<-occupied
	_, err := s.Query(context.Background(), personQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query err = %v, want DeadlineExceeded", err)
	}
	close(block)
	<-done
	st := s.Stats()
	if st.QueueTimeout != 1 {
		t.Fatalf("queue timeouts = %d, want 1", st.QueueTimeout)
	}
	if len(s.waiters) != 0 {
		t.Fatalf("queue not vacated: %d waiters", len(s.waiters))
	}
}
