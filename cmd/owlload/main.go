// Command owlload drives a chaos workload against a running owlserve: mixed
// canonical reads, probe inserts into the http://loadgen.powl/ namespace,
// window-lagged probe deletes (churn mode, -delete-every), injected
// pathological queries, and arrival bursts. Canonical answers are
// self-calibrated at startup (one clean run of each query) and asserted on
// every subsequent success — they are invariant under probe inserts, so any
// deviation under load, drain, or restart is a correctness failure.
//
// Usage:
//
//	owlload -addr http://127.0.0.1:7077 -duration 10s -out BENCH_6.json
//	owlload -addr ... -expect-outage        # CI kill+restart drill
//	owlload -addr ... -delete-every 6       # churn drill (pair with owlserve -churn-axiom)
//
// Exit is non-zero if any gate fails: wrong answers, unexpected failures,
// no shedding while bursts were enabled, p99 at/over -p99-under, or no
// retries when -expect-outage promised an outage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"powl/internal/serve/loadgen"
)

// canonicalQueries are LUBM-shaped reads whose answers exercise derived
// triples (subclass and subproperty closure), joins, and DISTINCT.
var canonicalQueries = []loadgen.CheckedQuery{
	{Name: "professors", Text: `SELECT ?x WHERE { ?x a <http://benchmark.powl/lubm#Professor> . }`},
	{Name: "members", Text: `SELECT ?x ?o WHERE { ?x <http://benchmark.powl/lubm#memberOf> ?o . }`},
	{Name: "profDepts", Text: `PREFIX ub: <http://benchmark.powl/lubm#>
SELECT ?x ?d WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . }`},
	{Name: "classes", Text: `SELECT DISTINCT ?t WHERE { ?x a ?t . }`},
}

type benchOut struct {
	Bench    string           `json:"bench"`
	Addr     string           `json:"addr"`
	Workers  int              `json:"workers"`
	Report   loadgen.Report   `json:"report"`
	Stats    json.RawMessage  `json:"server_stats,omitempty"`
	Deletion *deletionMetrics `json:"deletion,omitempty"`
	Verdict  string           `json:"verdict"`
	Failures []string         `json:"failures,omitempty"`
}

// deletionMetrics summarizes the server's DRed work during a churn run,
// derived from its /stats payload.
type deletionMetrics struct {
	RetractNsPerTriple float64 `json:"retract_ns_per_triple"` // writer time in Retract / retracted triples
	RederiveFraction   float64 `json:"rederive_fraction"`     // rederived / retracted: overdelete waste
	CompactTotalMs     float64 `json:"compact_total_ms"`      // cumulative compaction pause
	Compactions        int64   `json:"compactions"`
}

// deletionFromStats extracts the churn scorecard from /stats; nil when the
// payload is missing or the server never retracted anything.
func deletionFromStats(stats json.RawMessage) *deletionMetrics {
	if stats == nil {
		return nil
	}
	var st struct {
		Retracted      int64   `json:"retracted_triples"`
		Rederived      int64   `json:"rederived_triples"`
		RetractTotalMs float64 `json:"retract_total_ms"`
		CompactTotalMs float64 `json:"compact_total_ms"`
		Compactions    int64   `json:"compactions"`
	}
	if err := json.Unmarshal(stats, &st); err != nil || st.Retracted == 0 {
		return nil
	}
	return &deletionMetrics{
		RetractNsPerTriple: st.RetractTotalMs * 1e6 / float64(st.Retracted),
		RederiveFraction:   float64(st.Rederived) / float64(st.Retracted),
		CompactTotalMs:     st.CompactTotalMs,
		Compactions:        st.Compactions,
	}
}

func main() {
	var (
		addr         = flag.String("addr", "http://127.0.0.1:7077", "owlserve base URL")
		duration     = flag.Duration("duration", 10*time.Second, "run length")
		workers      = flag.Int("workers", 8, "concurrent clients")
		seed         = flag.Int64("seed", 1, "workload seed")
		slowEvery    = flag.Int("slow-every", 40, "inject a pathological query every n ops per worker (0 = never)")
		insertEvery  = flag.Int("insert-every", 10, "insert a probe batch every n ops per worker")
		deleteEvery  = flag.Int("delete-every", 0, "delete the oldest probe batch beyond the window every n ops per worker (0 = never)")
		deleteWindow = flag.Int("delete-window", 0, "live probe batches to keep per worker (0 = default)")
		burstEvery   = flag.Duration("burst-every", 500*time.Millisecond, "burst interval (0 = off)")
		burstSize    = flag.Int("burst-size", 0, "queries per burst (0 = default)")
		retryWindow  = flag.Duration("retry-window", 15*time.Second, "ride out unavailability this long")
		wait         = flag.Duration("wait", 30*time.Second, "wait this long for the server to come up")
		p99Under     = flag.Duration("p99-under", 0, "fail unless p99 of successes is under this (0 = no gate)")
		srvP99Under  = flag.Duration("server-p99-under", 0, "fail unless the server's own /stats query_p99_ms is under this (0 = no gate)")
		expectOutage = flag.Bool("expect-outage", false, "fail unless retries were needed (kill+restart drill)")
		expectShed   = flag.Bool("expect-shed", true, "fail unless shedding triggered while bursts are on")
		out          = flag.String("out", "", "write the benchmark JSON here (empty = stdout)")
	)
	flag.Parse()

	client := loadgen.HTTP{Base: *addr, Client: &http.Client{Timeout: 30 * time.Second}}
	if err := waitHealthy(*addr, *wait); err != nil {
		fatal(err)
	}

	// Self-calibrate: each canonical query's first clean answer becomes its
	// invariant. Probe inserts never touch these namespaces.
	queries := make([]loadgen.CheckedQuery, len(canonicalQueries))
	copy(queries, canonicalQueries)
	for i := range queries {
		rows, err := client.Query(context.Background(), queries[i].Text)
		if err != nil {
			fatal(fmt.Errorf("calibrating %s: %w", queries[i].Name, err))
		}
		queries[i].Want = rows
		fmt.Fprintf(os.Stderr, "owlload: calibrated %s = %d rows\n", queries[i].Name, rows)
	}

	slowQuery := ""
	if *slowEvery > 0 {
		// Triple cross product over all typed individuals: no shared
		// variables, cubic in the individual count — pathological on any
		// LUBM scale, so the watchdog (not completion) decides its fate.
		slowQuery = `SELECT ?x ?y ?z WHERE { ?x a ?c . ?y a ?d . ?z a ?e . }`
	}
	gen := loadgen.New(client, loadgen.Options{
		Workers:      *workers,
		Duration:     *duration,
		Seed:         *seed,
		Queries:      queries,
		SlowQuery:    slowQuery,
		SlowEvery:    *slowEvery,
		InsertEvery:  *insertEvery,
		DeleteEvery:  *deleteEvery,
		DeleteWindow: *deleteWindow,
		BurstEvery:   *burstEvery,
		BurstSize:    *burstSize,
		RetryWindow:  *retryWindow,
	})
	rep := gen.Run(context.Background())
	fmt.Fprintf(os.Stderr, "owlload: %s\n", rep)

	var failures []string
	if rep.OK == 0 {
		failures = append(failures, "no successful queries")
	}
	if rep.Wrong != 0 {
		failures = append(failures, fmt.Sprintf("%d wrong answers", rep.Wrong))
	}
	if rep.Failed != 0 {
		failures = append(failures, fmt.Sprintf("%d unexpected failures", rep.Failed))
	}
	if *expectShed && *burstEvery > 0 && rep.Shed == 0 {
		failures = append(failures, "bursts enabled but shedding never triggered")
	}
	if *p99Under > 0 && rep.P99Millis >= float64(*p99Under)/1e6 {
		failures = append(failures, fmt.Sprintf("p99 %.1fms not under %v", rep.P99Millis, *p99Under))
	}
	if *expectOutage && rep.Retried == 0 {
		failures = append(failures, "outage expected but no retries recorded")
	}
	if *deleteEvery > 0 && rep.Deletes == 0 {
		failures = append(failures, "churn enabled but no delete batch was ever accepted")
	}

	stats := fetchStats(*addr)
	if *srvP99Under > 0 {
		// Server-side latency gate: the server's own histogram covers every
		// admitted query (including other clients'), so it catches tail
		// latency the client-side sample can miss.
		p99, err := serverP99Ms(stats)
		switch {
		case err != nil:
			failures = append(failures, fmt.Sprintf("server p99 gate: %v", err))
		case p99 >= float64(*srvP99Under)/1e6:
			failures = append(failures, fmt.Sprintf("server-side p99 %.1fms not under %v", p99, *srvP99Under))
		}
	}

	bo := benchOut{
		Bench:    "serve_chaos",
		Addr:     *addr,
		Workers:  *workers,
		Report:   rep,
		Stats:    stats,
		Deletion: deletionFromStats(stats),
		Verdict:  "PASS",
	}
	if len(failures) > 0 {
		bo.Verdict = "FAIL"
		bo.Failures = failures
	}
	js, _ := json.MarshalIndent(bo, "", "  ")
	js = append(js, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(js)
	}
	if bo.Verdict != "PASS" {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "owlload: GATE FAILED: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "owlload: all gates passed")
}

// waitHealthy polls /healthz until the server admits work.
func waitHealthy(base string, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %v (last err: %v)", base, window, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchStats grabs the server's /stats for the benchmark record;
// best-effort (the server may already be gone in a restart drill).
func fetchStats(base string) json.RawMessage {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var buf json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&buf); err != nil {
		return nil
	}
	return buf
}

// serverP99Ms extracts query_p99_ms from a /stats payload.
func serverP99Ms(stats json.RawMessage) (float64, error) {
	if stats == nil {
		return 0, fmt.Errorf("no /stats payload")
	}
	var st struct {
		QueryP99Ms *float64 `json:"query_p99_ms"`
	}
	if err := json.Unmarshal(stats, &st); err != nil {
		return 0, err
	}
	if st.QueryP99Ms == nil {
		return 0, fmt.Errorf("/stats has no query_p99_ms field")
	}
	return *st.QueryP99Ms, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
