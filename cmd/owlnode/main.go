// Command owlnode is one worker of the shared-filesystem cluster: it runs
// Algorithm 3's round loop against the work directory owlcluster prepared,
// synchronizing with its peers purely through files — the communication
// mechanism of the paper's implementation (§V).
//
// Usage (one per cluster node):
//
//	owlnode -dir /sharedfs/job1 -id 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powl/internal/faultinject"
	"powl/internal/fscluster"
	"powl/internal/obs"
	"powl/internal/reason"
)

func main() {
	var (
		dir       = flag.String("dir", "powl-work", "shared work directory")
		id        = flag.Int("id", -1, "this node's index (required)")
		engine    = flag.String("engine", "forward", "rule engine: forward, rete, hybrid")
		threads   = flag.Int("threads", 0, "intra-worker parallel rule-firing goroutines (0 or 1 = serial; rete ignores it)")
		poll      = flag.Duration("poll", 20*time.Millisecond, "marker polling interval")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-round peer wait timeout")
		fault     = flag.String("fault", "", "fault-injection spec, e.g. \"crash=2\" (see internal/faultinject)")
		journal   = flag.String("journal", "", "write this node's run journal (JSONL) to the given file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "missing -id")
		flag.Usage()
		os.Exit(2)
	}
	var inject *faultinject.Injector
	if *fault != "" {
		fcfg, err := faultinject.ParseSpec(*fault)
		if err != nil {
			fatal(err)
		}
		inject = faultinject.New(fcfg)
	}
	k, err := fscluster.ClusterSize(*dir)
	if err != nil {
		fatal(fmt.Errorf("reading cluster size (did owlcluster prepare %s?): %w", *dir, err))
	}
	if *id >= k {
		fatal(fmt.Errorf("id %d out of range for a %d-node cluster", *id, k))
	}

	var eng reason.Engine
	switch *engine {
	case "forward":
		eng = reason.Forward{Threads: *threads}
	case "rete":
		eng = reason.Rete{}
	case "hybrid":
		eng = reason.Hybrid{Threads: *threads}
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var run *obs.Run
	var sink *obs.JSONLSink
	if *journal != "" || *debugAddr != "" {
		reg := obs.NewRegistry()
		if *journal != "" {
			f, err := os.Create(*journal)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sink = obs.NewJSONLSink(f)
		}
		run = obs.NewRun(sink, reg)
		if *debugAddr != "" {
			addr, err := obs.ServeDebug(*debugAddr, reg)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "node %d: debug endpoints on http://%s\n", *id, addr)
		}
	}

	start := time.Now()
	res, err := fscluster.RunNode(fscluster.NodeConfig{
		ID: *id, K: k, Dir: *dir,
		Engine: eng, Poll: *poll, Timeout: *timeout,
		Inject: inject, Obs: run,
	})
	if sink != nil {
		// An injected crash still leaves a valid journal (fault event last).
		if ferr := sink.Flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "node %d: journal: %v\n", *id, ferr)
		}
	}
	if err != nil {
		fatal(err)
	}
	rejoined := ""
	if res.Epoch > 1 {
		rejoined = fmt.Sprintf(", epoch %d (rejoined at round %d)", res.Epoch, res.StartRound)
	}
	fmt.Fprintf(os.Stderr, "node %d: %d rounds, derived %d, sent %d, closure %d triples, %v%s\n",
		*id, res.Rounds, res.Derived, res.Sent, res.Closure.Len(),
		time.Since(start).Round(time.Millisecond), rejoined)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
