// Command owlserve is the live query server: it materializes a knowledge
// base at startup, then serves SPARQL-subset queries over epoch-pinned MVCC
// snapshots while accepting N-Triples inserts that an incremental-reasoning
// writer folds into fresh epochs. Robustness features — admission control
// with load shedding, per-query deadlines, a slow-query watchdog, panic
// isolation — are always on; SIGTERM triggers a graceful drain (stop
// admitting, finish in-flight work, flush the writer and the journal).
//
// Usage:
//
//	owlserve -addr :7077 -lubm 1 -deadline 2s -slow 500ms -journal serve.jsonl
//	owlserve -addr :7077 -in closure.nt -stats-out stats.json
//
// The process exits 0 only if the drain dropped nothing: every admitted
// query completed and every accepted insert was applied.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powl/internal/datagen"
	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rio"
	"powl/internal/serve"
	"powl/internal/serve/loadgen"
	"powl/internal/vocab"
)

func main() {
	var (
		addr     = flag.String("addr", ":7077", "listen address")
		in       = flag.String("in", "", "N-Triples/Turtle input; empty generates LUBM")
		lubm     = flag.Int("lubm", 1, "LUBM universities when -in is empty")
		depts    = flag.Int("depts", 3, "LUBM departments per university (0 = LUBM default)")
		seed     = flag.Int64("seed", 7, "LUBM generator seed")
		inflight = flag.Int("max-inflight", 0, "concurrent query slots (0 = default)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = default)")
		deadline = flag.Duration("deadline", 2*time.Second, "per-query deadline")
		slow     = flag.Duration("slow", 500*time.Millisecond, "slow-query watchdog threshold (0 = off)")
		journal  = flag.String("journal", "", "JSONL journal path (empty = no journal)")
		statsOut = flag.String("stats-out", "", "write final stats JSON here (empty = stderr)")
		prov     = flag.Bool("prov", false, "record derivation provenance and serve POST /explain")
		threads  = flag.Int("threads", 0, "intra-worker parallel rule-firing goroutines for writer-side closures (0 or 1 = serial)")
		churn    = flag.Bool("churn-axiom", false, "arm the loadgen churn drill: make the churn predicate a subproperty of the probe marker")
		cratio   = flag.Float64("compact-ratio", 0, "compact when dead/log exceeds this (0 = default, negative = never)")
		cmin     = flag.Int("compact-min-dead", 0, "never compact below this many tombstones (0 = default)")
	)
	flag.Parse()

	dict := rdf.NewDict()
	base := rdf.NewGraph()
	if *in != "" {
		if _, err := rio.LoadFile(*in, dict, base); err != nil {
			fatal(err)
		}
	} else {
		ds := datagen.LUBM(datagen.LUBMConfig{Universities: *lubm, Seed: *seed, DeptsPerUniv: *depts})
		dict, base = ds.Dict, ds.Graph
	}
	if *churn {
		// The axiom compiles to a ground rule deriving one probe marker per
		// churn triple, so loadgen deletes exercise full DRed retraction.
		base.Add(rdf.Triple{
			S: dict.InternIRI(loadgen.ChurnBatchPredicate),
			P: dict.InternIRI(vocab.RDFSSubPropertyOf),
			O: dict.InternIRI(loadgen.ChurnMarkerPredicate),
		})
	}
	start := time.Now()
	kb := serve.Build(dict, base, serve.BuildConfig{Prov: *prov, Threads: *threads})
	fmt.Fprintf(os.Stderr, "owlserve: materialized %d -> %d triples in %v\n",
		base.Len(), kb.Graph.Len(), time.Since(start).Round(time.Millisecond))

	var sink *obs.JSONLSink
	var run *obs.Run
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = obs.NewJSONLSink(f)
		run = obs.NewRun(sink, nil)
	}

	srv, err := serve.New(kb, serve.Config{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		Deadline:       *deadline,
		SlowQuery:      *slow,
		CompactRatio:   *cratio,
		CompactMinDead: *cmin,
		Run:            run,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	//powl:ignore ctxspawn the send targets a buffered channel of capacity 1 and can never block; the goroutine exits when the listener closes
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "owlserve: serving on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "owlserve: signal received, draining")
	case err := <-errc:
		fatal(err)
	}

	// Drain order: first the serve layer (stops admitting, completes every
	// admitted query, flushes the writer), then the HTTP listener (waits
	// for handlers to write their responses out).
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "owlserve: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "owlserve: http shutdown: %v\n", err)
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "owlserve: journal flush: %v\n", err)
		}
	}

	st := srv.Stats()
	out, _ := json.MarshalIndent(st, "", "  ")
	if *statsOut != "" {
		if err := os.WriteFile(*statsOut, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "owlserve: final stats: %s\n", out)
	}
	if st.Dropped != 0 {
		fmt.Fprintf(os.Stderr, "owlserve: FAILED drain contract: %d admitted queries dropped\n", st.Dropped)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "owlserve: drained clean")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
