// Command owlvet runs the repo's determinism/concurrency analyzer suite
// (internal/analysis) over the module and reports findings.
//
// Usage:
//
//	go run ./cmd/owlvet [flags] [dir]
//
// The positional dir (default ".") only locates the module: owlvet walks up
// to the nearest go.mod and always analyzes the whole module, so
// `go run ./cmd/owlvet ./...` and `go run ./cmd/owlvet` are equivalent.
//
// Flags:
//
//	-json   emit findings as a JSON array ({check, file, line, col, message})
//	        for machine consumption; CI turns these into file:line annotations
//	-tests  include _test.go files in every analyzer (globalrand always
//	        includes them)
//	-list   print the analyzers and the invariant each enforces, then exit
//	-debt   report suppression debt instead of findings: every //powl:ignore
//	        directive grouped by check with counts, checked against the
//	        module's budget file (exit 1 when a count exceeds its ceiling)
//	-budget path of the budget file for -debt (default: owlvet.budget at the
//	        module root, skipped silently when absent; an explicit path must
//	        exist)
//
// Exit status: 0 clean, 1 findings (or budget exceeded), 2 operational
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powl/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	tests := flag.Bool("tests", false, "include _test.go files in all analyzers")
	list := flag.Bool("list", false, "list analyzers and exit")
	debt := flag.Bool("debt", false, "report suppression debt and check it against the budget")
	budget := flag.String("budget", "", "budget file for -debt (default: owlvet.budget at the module root)")
	flag.Parse()

	suite := analysis.NewSuite()
	suite.Tests = *tests
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept `./...`-style package patterns for muscle-memory
		// compatibility; only the directory part matters.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" {
			dir = "."
		}
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}

	if *debt {
		runDebt(mod, *budget, *jsonOut)
		return
	}

	findings, err := suite.Run(mod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	analysis.RelPaths(mod.Root, findings)

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "owlvet:", err)
			os.Exit(2)
		}
	} else if err := analysis.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "owlvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// runDebt prints the suppression-debt report and enforces the budget. A
// budget file given explicitly must exist; the default module-root
// owlvet.budget is optional so the report stays usable in scratch modules.
func runDebt(mod *analysis.Module, budgetPath string, jsonOut bool) {
	report := analysis.CollectDebt(mod)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "owlvet:", err)
			os.Exit(2)
		}
	} else if err := analysis.WriteDebt(os.Stdout, report); err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}

	explicit := budgetPath != ""
	if !explicit {
		budgetPath = filepath.Join(mod.Root, analysis.DefaultBudgetFile)
		if _, err := os.Stat(budgetPath); err != nil {
			return // no budget checked in: report only
		}
	}
	b, err := analysis.LoadBudget(budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	if over := report.Exceeds(b); len(over) > 0 {
		for _, msg := range over {
			fmt.Fprintln(os.Stderr, "owlvet: debt:", msg)
		}
		os.Exit(1)
	}
}
