// Command owlvet runs the repo's determinism/concurrency analyzer suite
// (internal/analysis) over the module and reports findings.
//
// Usage:
//
//	go run ./cmd/owlvet [flags] [dir]
//
// The positional dir (default ".") only locates the module: owlvet walks up
// to the nearest go.mod and always analyzes the whole module, so
// `go run ./cmd/owlvet ./...` and `go run ./cmd/owlvet` are equivalent.
//
// Flags:
//
//	-json   emit findings as a JSON array ({check, file, line, col, message})
//	        for machine consumption; CI turns these into file:line annotations
//	-tests  include _test.go files in every analyzer (globalrand always
//	        includes them)
//	-list   print the analyzers and the invariant each enforces, then exit
//
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powl/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	tests := flag.Bool("tests", false, "include _test.go files in all analyzers")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	suite := analysis.NewSuite()
	suite.Tests = *tests
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept `./...`-style package patterns for muscle-memory
		// compatibility; only the directory part matters.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" {
			dir = "."
		}
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	findings, err := suite.Run(mod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	analysis.RelPaths(mod.Root, findings)

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "owlvet:", err)
			os.Exit(2)
		}
	} else if err := analysis.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "owlvet:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "owlvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
