// Command streampart partitions an N-Triples dataset into per-partition
// files in a single streaming pass, without loading the graph into memory —
// the scalability property the paper highlights for the hash and
// domain-specific policies (§III-A). The resulting files can be fed
// directly to one owlinfer worker each.
//
// Usage:
//
//	streampart -in lubm10.nt -k 4 -policy hash -out parts/
//	streampart -in lubm10.nt -k 8 -policy domain -domain-marker univ -out parts/
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"powl/internal/partition"
	"powl/internal/rdf"
)

func main() {
	var (
		in     = flag.String("in", "", "input N-Triples file (required)")
		outDir = flag.String("out", "parts", "output directory for part files")
		k      = flag.Int("k", 4, "number of partitions")
		policy = flag.String("policy", "hash", "streaming policy: hash, domain")
		marker = flag.String("domain-marker", "univ", "locality marker for the domain policy")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		flag.Usage()
		os.Exit(2)
	}

	var assigner partition.StreamAssigner
	switch *policy {
	case "hash":
		assigner = partition.HashAssigner{K: *k}
	case "domain":
		m := *marker
		assigner = partition.NewDomainAssigner(*k, func(t rdf.Term) string {
			return extractKey(t.Value, m)
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown streaming policy %q (graph partitioning needs the whole graph; use cmd/partmetrics)\n", *policy)
		os.Exit(2)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	sinks := make([]io.Writer, *k)
	var flushers []*bufio.Writer
	for i := range sinks {
		of, err := os.Create(filepath.Join(*outDir, fmt.Sprintf("part_%02d.nt", i)))
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		bw := bufio.NewWriter(of)
		flushers = append(flushers, bw)
		sinks[i] = bw
	}

	stats, err := partition.StreamPartition(bufio.NewReader(f), *k, assigner, sinks)
	if err != nil {
		fatal(err)
	}
	for _, bw := range flushers {
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("streamed %d triples into %d parts (%s policy)\n", stats.Total, *k, assigner.Name())
	fmt.Printf("per-partition: %v\n", stats.PerPartition)
	fmt.Printf("replicated: %d  schema broadcast: %d\n", stats.Replicated, stats.SchemaBroadcast)
}

func extractKey(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	j := i + len(marker)
	start := j
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j == start {
		return ""
	}
	return s[i:j]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
