// Command sparql answers a basic-graph-pattern query over an N-Triples
// knowledge base, optionally materializing it first — the query side of the
// materialized-KB trade-off the paper's introduction describes.
//
// Usage:
//
//	sparql -in closure.nt -q 'SELECT ?x WHERE { ?x a <http://.../Chair> . }'
//	sparql -in base.nt -materialize -workers 4 -q "$(cat query.rq)"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/query"
	"powl/internal/rdf"
	"powl/internal/rio"
)

func main() {
	var (
		in          = flag.String("in", "", "input RDF file, .nt or .ttl (required)")
		q           = flag.String("q", "", "SPARQL-subset query (required)")
		materialize = flag.Bool("materialize", false, "compute the OWL-Horst closure before querying")
		workers     = flag.Int("workers", 4, "workers for -materialize")
		timeout     = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
	)
	flag.Parse()
	if *in == "" || *q == "" {
		fmt.Fprintln(os.Stderr, "need both -in and -q")
		flag.Usage()
		os.Exit(2)
	}

	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if _, err := rio.LoadFile(*in, dict, g); err != nil {
		fatal(err)
	}

	if *materialize {
		ds := &datagen.Dataset{Name: *in, Dict: dict, Graph: g}
		res, err := core.Materialize(ds, core.Config{Workers: *workers, Policy: core.HashPolicy})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "materialized: %d -> %d triples\n", g.Len(), res.Graph.Len())
		g = res.Graph
	}

	parsed, err := query.Parse(*q, dict)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := parsed.SolveContext(ctx, g)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "query aborted after %v (%d partial rows discarded)\n", *timeout, len(res.Rows))
		os.Exit(1)
	}
	res.SortRows()
	fmt.Print(res.Format(dict))
	fmt.Fprintf(os.Stderr, "%d rows in %v\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
