// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§VI). Each figure prints the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -all            # every figure and table, full scale
//	experiments -fig 1          # one figure
//	experiments -table 1        # Table I
//	experiments -quick -all     # reduced scales (smoke test)
package main

import (
	"flag"
	"fmt"
	"os"

	"powl/internal/core"
	"powl/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (1-6)")
		table   = flag.Int("table", 0, "table to regenerate (1)")
		all     = flag.Bool("all", false, "regenerate everything")
		quick   = flag.Bool("quick", false, "reduced scales and repeats")
		plot    = flag.Bool("plot", false, "also render ASCII charts of each figure")
		journal = flag.String("journal", "", "run one instrumented materialization and write its journal (JSONL) here")
		trace   = flag.String("trace", "", "run one instrumented materialization and write a Perfetto trace here")
		engine  = flag.String("engine", "hybrid", "engine for the -journal/-trace profile run")
		k       = flag.Int("k", 4, "workers for the -journal/-trace profile run")
	)
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	if *journal != "" || *trace != "" {
		err := experiments.Profile(os.Stdout, scale, experiments.ProfileConfig{
			Engine:  core.EngineKind(*engine),
			Workers: *k,
			Journal: *journal,
			Trace:   *trace,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if !*all && *fig == 0 && *table == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -fig N, -table 1, or -journal/-trace")
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *all || *fig == 1 {
		run("fig1", func() error {
			rows, err := experiments.Fig1(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig1(os.Stdout, rows)
			if *plot {
				experiments.PlotFig1(os.Stdout, rows)
			}
			return nil
		})
	}
	if *all || *fig == 2 {
		run("fig2", func() error {
			rows, err := experiments.Fig2(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig2(os.Stdout, rows)
			if *plot {
				experiments.PlotFig2(os.Stdout, rows)
			}
			return nil
		})
	}
	if *all || *fig == 3 {
		run("fig3", func() error {
			rows, err := experiments.Fig3(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig3(os.Stdout, rows)
			if *plot {
				experiments.PlotFig3(os.Stdout, rows)
			}
			return nil
		})
	}
	if *all || *fig == 4 {
		run("fig4", func() error {
			res, err := experiments.Fig4(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig4(os.Stdout, res)
			if *plot {
				experiments.PlotFig4(os.Stdout, res)
			}
			return nil
		})
	}
	if *all || *fig == 5 {
		run("fig5", func() error {
			rows, err := experiments.Fig5(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig5(os.Stdout, rows)
			if *plot {
				experiments.PlotFig5(os.Stdout, rows)
			}
			return nil
		})
	}
	if *all || *fig == 6 {
		run("fig6", func() error {
			rows, err := experiments.Fig6(scale)
			if err != nil {
				return err
			}
			experiments.PrintFig6(os.Stdout, rows)
			if *plot {
				experiments.PlotFig6(os.Stdout, rows)
			}
			return nil
		})
	}
	if *all || *table == 1 {
		run("table1", func() error {
			rows, err := experiments.Table1(scale)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			return nil
		})
	}
}
