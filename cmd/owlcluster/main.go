// Command owlcluster is the master of the shared-filesystem deployment (the
// paper's own setup, §V): it compiles the ontology, partitions the data,
// writes the work directory, and either prints the owlnode commands to run
// on each cluster node or — with -run — spawns them as local processes and
// merges their closures.
//
// Usage:
//
//	owlcluster -in lubm10.nt -k 4 -dir /sharedfs/job1            # prepare only
//	owlcluster -in lubm10.nt -k 4 -dir work -run -o closure.nt   # run locally
//
// On a real cluster, point -dir at the shared filesystem and start one
// `owlnode -id <i>` per machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"powl/internal/fscluster"
	"powl/internal/gpart"
	"powl/internal/ntriples"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/rio"
)

func main() {
	var (
		in      = flag.String("in", "", "input RDF file, .nt or .ttl (required)")
		dir     = flag.String("dir", "powl-work", "shared work directory")
		k       = flag.Int("k", 4, "number of cluster nodes")
		policy  = flag.String("policy", "graph", "data partitioning policy: graph, hash")
		seed    = flag.Int64("seed", 42, "partitioner seed")
		run     = flag.Bool("run", false, "spawn owlnode processes locally and merge the closures")
		nodeBin = flag.String("node-bin", "", "owlnode binary for -run ('' = go run ./cmd/owlnode)")
		engine  = flag.String("engine", "forward", "engine passed to the nodes")
		out     = flag.String("o", "", "merged closure output file (with -run)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		flag.Usage()
		os.Exit(2)
	}

	dict := rdf.NewDict()
	g := rdf.NewGraph()
	n, err := rio.LoadFile(*in, dict, g)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples\n", n)

	var pol partition.Policy
	switch *policy {
	case "graph":
		pol = partition.GraphPolicy{Opts: gpart.Options{Seed: *seed}}
	case "hash":
		pol = partition.HashPolicy{}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	start := time.Now()
	m, err := fscluster.Prepare(*dir, dict, g, *k, pol)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "prepared %s in %v: bal=%.1f IR=%.3f nodes/part=%v\n",
		*dir, time.Since(start).Round(time.Millisecond), m.Bal, m.IR, m.NodesPerPart)

	if !*run {
		fmt.Println("work directory ready; start one node per machine:")
		for i := 0; i < *k; i++ {
			fmt.Printf("  owlnode -dir %s -id %d -engine %s\n", *dir, i, *engine)
		}
		return
	}

	// Spawn the nodes as real OS processes.
	procs := make([]*exec.Cmd, *k)
	for i := 0; i < *k; i++ {
		var cmd *exec.Cmd
		if *nodeBin != "" {
			cmd = exec.Command(*nodeBin, "-dir", *dir, "-id", fmt.Sprint(i), "-engine", *engine)
		} else {
			cmd = exec.Command("go", "run", "./cmd/owlnode", "-dir", *dir, "-id", fmt.Sprint(i), "-engine", *engine)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		procs[i] = cmd
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			fatal(fmt.Errorf("node %d: %w", i, err))
		}
	}

	mdict, merged, err := fscluster.MergeClosures(*dir, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "merged closure: %d triples (%d inferred) in %v total\n",
		merged.Len(), merged.Len()-n, time.Since(start).Round(time.Millisecond))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ntriples.WriteGraph(f, mdict, merged); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
