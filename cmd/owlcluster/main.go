// Command owlcluster is the master of the shared-filesystem deployment (the
// paper's own setup, §V): it compiles the ontology, partitions the data,
// writes the work directory, and either prints the owlnode commands to run
// on each cluster node or — with -run — spawns them as local processes and
// merges their closures.
//
// Usage:
//
//	owlcluster -in lubm10.nt -k 4 -dir /sharedfs/job1            # prepare only
//	owlcluster -in lubm10.nt -k 4 -dir work -run -o closure.nt   # run locally
//
// On a real cluster, point -dir at the shared filesystem and start one
// `owlnode -id <i>` per machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"time"

	"powl/internal/cluster"
	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/faultinject"
	"powl/internal/fscluster"
	"powl/internal/gpart"
	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/rio"
)

func main() {
	var (
		in        = flag.String("in", "", "input RDF file, .nt or .ttl (required)")
		dir       = flag.String("dir", "powl-work", "shared work directory")
		k         = flag.Int("k", 4, "number of cluster nodes")
		policy    = flag.String("policy", "graph", "data partitioning policy: graph, hash")
		seed      = flag.Int64("seed", 42, "partitioner seed")
		run       = flag.Bool("run", false, "spawn owlnode processes locally and merge the closures")
		nodeBin   = flag.String("node-bin", "", "owlnode binary for -run ('' = go run ./cmd/owlnode)")
		engine    = flag.String("engine", "forward", "engine passed to the nodes")
		threads   = flag.Int("threads", 0, "intra-worker parallel rule-firing goroutines per node (0 or 1 = serial)")
		transport = flag.String("transport", "file", "cluster transport: file (owlnode processes over the shared work dir), tcp or mem (in-process workers with transport-generic recovery)")
		out       = flag.String("o", "", "merged closure output file (with -run)")
		fault     = flag.String("fault", "", "fault-injection spec, e.g. \"crash=2\" or \"crash=2,drop=2,dropfrom=0,dropto=1\" (see internal/faultinject); crash targets -fault-node, the rest hits the transport")
		faultNode = flag.Int("fault-node", -1, "node receiving the -fault spec (-1 = last node)")
		deadline  = flag.Duration("round-deadline", 2*time.Second, "supervisor: how long a node may trail a round before being declared dead (with -run)")
		journal   = flag.String("journal", "", "write the merged run journal (JSONL) to this file (with -run)")
		trace     = flag.String("trace", "", "write a Chrome/Perfetto trace-event file to this file (with -run)")
		report    = flag.Bool("report", false, "print the profile report — top rules, per-worker phases, transport totals (with -run)")
		debugAddr = flag.String("debug-addr", "", "serve the master's /metrics and /debug/pprof on this address")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		flag.Usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr, obs.NewRegistry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s\n", addr)
	}
	if *fault != "" {
		if _, err := faultinject.ParseSpec(*fault); err != nil {
			fatal(err)
		}
		if *faultNode < 0 {
			*faultNode = *k - 1
		}
		if *faultNode >= *k {
			fatal(fmt.Errorf("-fault-node %d out of range for -k %d", *faultNode, *k))
		}
	}

	dict := rdf.NewDict()
	g := rdf.NewGraph()
	n, err := rio.LoadFile(*in, dict, g)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples\n", n)

	// The tcp and mem transports have no owlnode process to hand the work to;
	// the cluster runs in-process with the transport-generic recovery path
	// (checkpoints under -dir, failure detector, partition adoption).
	if *transport != "file" {
		if !*run {
			fatal(fmt.Errorf("-transport %s runs the cluster in-process; add -run", *transport))
		}
		runInProcess(dict, g, inProcOpts{
			in: *in, dir: *dir, k: *k, policy: *policy, seed: *seed,
			engine: *engine, transport: *transport, out: *out, threads: *threads,
			fault: *fault, faultNode: *faultNode, deadline: *deadline,
			journal: *journal, trace: *trace, report: *report,
		})
		return
	}

	var pol partition.Policy
	switch *policy {
	case "graph":
		pol = partition.GraphPolicy{Opts: gpart.Options{Seed: *seed}}
	case "hash":
		pol = partition.HashPolicy{}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	start := time.Now()
	m, err := fscluster.Prepare(*dir, dict, g, *k, pol)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "prepared %s in %v: bal=%.1f IR=%.3f nodes/part=%v\n",
		*dir, time.Since(start).Round(time.Millisecond), m.Bal, m.IR, m.NodesPerPart)

	if !*run {
		fmt.Println("work directory ready; start one node per machine:")
		for i := 0; i < *k; i++ {
			extra := ""
			if *fault != "" && i == *faultNode {
				extra = " -fault " + *fault
			}
			if *threads > 1 {
				extra += fmt.Sprintf(" -threads %d", *threads)
			}
			fmt.Printf("  owlnode -dir %s -id %d -engine %s%s\n", *dir, i, *engine, extra)
		}
		return
	}

	// Spawn the nodes as real OS processes. With any observability flag set,
	// every node journals to its own fragment in the work directory; the
	// fragments are merged below once the run completes.
	obsWanted := *journal != "" || *trace != "" || *report
	layout := fscluster.Layout{Dir: *dir}
	procs := make([]*exec.Cmd, *k)
	for i := 0; i < *k; i++ {
		args := []string{"-dir", *dir, "-id", fmt.Sprint(i), "-engine", *engine}
		if *threads > 1 {
			args = append(args, "-threads", fmt.Sprint(*threads))
		}
		if obsWanted {
			args = append(args, "-journal", layout.JournalFile(i))
		}
		if *fault != "" && i == *faultNode {
			args = append(args, "-fault", *fault)
		}
		var cmd *exec.Cmd
		if *nodeBin != "" {
			cmd = exec.Command(*nodeBin, args...)
		} else {
			cmd = exec.Command("go", append([]string{"run", "./cmd/owlnode"}, args...)...)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		procs[i] = cmd
	}

	// Supervise alongside the nodes: detect a node missing its round deadline,
	// declare it dead, and let a survivor adopt its partition.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type supOut struct {
		res *fscluster.SuperviseResult
		err error
	}
	supCh := make(chan supOut, 1)
	go func() {
		res, err := fscluster.Supervise(ctx, fscluster.SuperviseConfig{
			Dir: *dir, K: *k, RoundDeadline: *deadline,
		})
		supCh <- supOut{res, err}
	}()

	waitErrs := make([]error, *k)
	for i, p := range procs {
		waitErrs[i] = p.Wait()
	}
	var sup supOut
	select {
	case sup = <-supCh:
	case <-time.After(5 * time.Second):
		// All nodes have exited but supervision has not converged (e.g. every
		// node failed before writing a closure); stop it and report.
		cancel()
		sup = <-supCh
	}
	for _, victim := range sortedVictims(sup.res.Dead) {
		fmt.Fprintf(os.Stderr, "node %d declared dead; partition recovered by node %d\n", victim, sup.res.Dead[victim])
	}
	for i, werr := range waitErrs {
		if werr == nil {
			continue
		}
		if _, dead := sup.res.Dead[i]; dead {
			continue // expected: the node died and was recovered
		}
		fatal(fmt.Errorf("node %d: %w", i, werr))
	}
	if sup.err != nil {
		fatal(fmt.Errorf("supervisor: %w", sup.err))
	}

	mergeStart := time.Now()
	mdict, merged, err := fscluster.MergeClosures(*dir, *k)
	if err != nil {
		fatal(err)
	}
	mergeDur := time.Since(mergeStart)
	fmt.Fprintf(os.Stderr, "merged closure: %d triples (%d inferred) in %v total\n",
		merged.Len(), merged.Len()-n, time.Since(start).Round(time.Millisecond))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ntriples.WriteGraph(f, mdict, merged); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if obsWanted {
		events, err := mergeJournals(layout, *k)
		if err != nil {
			fatal(err)
		}
		// The master's aggregation (closure merge) is a phase of its own,
		// appended on the master track after the last node event — the same
		// accounting the in-process cluster layer journals.
		last := events[len(events)-1].TS
		events = append(events,
			obs.Event{Type: obs.EvPhase, TS: last, Dur: int64(mergeDur),
				Worker: obs.MasterWorker, Phase: obs.PhaseAggregate},
			obs.Event{Type: obs.EvRunEnd, TS: last + int64(mergeDur),
				Dur: int64(time.Since(start)), Worker: obs.MasterWorker})
		if *journal != "" {
			if err := writeJournal(*journal, events); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote journal %s (%d events)\n", *journal, len(events))
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			if err := obs.WriteTrace(f, events); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote trace %s (load at ui.perfetto.dev)\n", *trace)
		}
		if *report {
			obs.WriteReport(os.Stdout, events, 10)
		}
	}
}

// inProcOpts carries the flag values the in-process path consumes.
type inProcOpts struct {
	in, dir, policy, engine, transport, out, journal, trace string
	k, faultNode, threads                                   int
	seed                                                    int64
	deadline                                                time.Duration
	fault                                                   string
	report                                                  bool
}

// runInProcess executes the cluster inside this process over the tcp or mem
// transport with recovery armed: per-round delta checkpoints in -dir, the
// barrier-frontier failure detector, and partition adoption by the lowest
// live worker. The -fault spec is split the way a real deployment fails:
// crash=N becomes the -fault-node worker's fail-stop schedule, while
// send/recv/delay faults and the drop=N connection severing wrap the
// transport itself.
func runInProcess(dict *rdf.Dict, g *rdf.Graph, o inProcOpts) {
	ds := &datagen.Dataset{Name: o.in, Dict: dict, Graph: g}

	var inject []*faultinject.Injector
	var trFault *faultinject.Injector
	if o.fault != "" {
		fcfg, err := faultinject.ParseSpec(o.fault)
		if err != nil {
			fatal(err)
		}
		if fcfg.CrashRound > 0 {
			inject = make([]*faultinject.Injector, o.k)
			inject[o.faultNode] = faultinject.New(faultinject.Config{CrashRound: fcfg.CrashRound})
			fcfg.CrashRound = 0
		}
		if fcfg != (faultinject.Config{}) {
			trFault = faultinject.New(fcfg)
		}
	}

	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		fatal(err)
	}
	store, err := cluster.NewDirCheckpoints(o.dir, dict)
	if err != nil {
		fatal(err)
	}

	obsWanted := o.journal != "" || o.trace != "" || o.report
	var sink *obs.MemSink
	var orun *obs.Run
	if obsWanted {
		sink = &obs.MemSink{}
		orun = obs.NewRun(sink, obs.NewRegistry())
	}

	start := time.Now()
	res, err := core.Materialize(ds, core.Config{
		Workers:        o.k,
		Policy:         core.PolicyKind(o.policy),
		Engine:         core.EngineKind(o.engine),
		Threads:        o.threads,
		Transport:      core.TransportKind(o.transport),
		Seed:           o.seed,
		Obs:            orun,
		Recovery:       &cluster.RecoveryConfig{Store: store, RoundDeadline: o.deadline},
		Inject:         inject,
		TransportFault: trFault,
	})
	if err != nil {
		fatal(err)
	}
	for _, victim := range sortedVictims(res.Recovered) {
		fmt.Fprintf(os.Stderr, "worker %d declared dead; partition recovered by worker %d\n",
			victim, res.Recovered[victim])
	}
	fmt.Fprintf(os.Stderr, "closure: %d triples (%d inferred) in %d rounds, %v total\n",
		res.Graph.Len(), res.Inferred, res.Rounds, time.Since(start).Round(time.Millisecond))

	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ntriples.WriteGraph(f, dict, res.Graph); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", o.out)
	}

	if obsWanted {
		events := sink.Events()
		if o.journal != "" {
			if err := writeJournal(o.journal, events); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote journal %s (%d events)\n", o.journal, len(events))
		}
		if o.trace != "" {
			f, err := os.Create(o.trace)
			if err != nil {
				fatal(err)
			}
			if err := obs.WriteTrace(f, events); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote trace %s (load at ui.perfetto.dev)\n", o.trace)
		}
		if o.report {
			obs.WriteReport(os.Stdout, events, 10)
		}
	}
}

// mergeJournals reads every node's journal fragment and interleaves the
// events by timestamp. Each node journals on its own clock (ns since its
// own start); the nodes start within milliseconds of each other, so the
// merged ordering is faithful at round granularity. A missing fragment is
// tolerated: a node declared dead may have crashed before flushing.
func mergeJournals(l fscluster.Layout, k int) ([]obs.Event, error) {
	var events []obs.Event
	found := 0
	for i := 0; i < k; i++ {
		f, err := os.Open(l.JournalFile(i))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		evs, perr := obs.ParseJournal(f)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("node %d journal: %w", i, perr)
		}
		events = append(events, evs...)
		found++
	}
	if found == 0 {
		return nil, fmt.Errorf("no node journals found in %s", l.Dir)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	return events, nil
}

// writeJournal writes the merged events back out as one JSONL file.
func writeJournal(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONLSink(f)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedVictims orders a victim->adopter recovery map for stable reporting
// (and for the log lines the chaos CI job greps).
func sortedVictims(dead map[int]int) []int {
	victims := make([]int, 0, len(dead))
	for v := range dead {
		victims = append(victims, v)
	}
	sort.Ints(victims)
	return victims
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
