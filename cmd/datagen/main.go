// Command datagen emits one of the benchmark datasets (LUBM, UOBM, MDC) as
// N-Triples on stdout or into a file.
//
// Usage:
//
//	datagen -dataset lubm -scale 10 -seed 7 -o lubm10.nt
//	datagen -dataset mdc  -scale 16 > mdc16.nt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"powl/internal/datagen"
	"powl/internal/ntriples"
)

func main() {
	var (
		dataset = flag.String("dataset", "lubm", "dataset to generate: lubm, uobm, mdc")
		scale   = flag.Int("scale", 1, "scale factor (universities for lubm/uobm, fields for mdc)")
		seed    = flag.Int64("seed", 7, "generator seed")
		out     = flag.String("o", "", "output file ('' = stdout)")
	)
	flag.Parse()

	var ds *datagen.Dataset
	switch *dataset {
	case "lubm":
		ds = datagen.LUBM(datagen.LUBMConfig{Universities: *scale, Seed: *seed})
	case "uobm":
		ds = datagen.UOBM(datagen.UOBMConfig{Universities: *scale, Seed: *seed})
	case "mdc":
		ds = datagen.MDC(datagen.MDCConfig{Fields: *scale, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want lubm, uobm or mdc)\n", *dataset)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ntriples.WriteGraph(w, ds.Dict, ds.Graph); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s-%d: %d triples\n", *dataset, *scale, ds.Graph.Len())
}
