// Command partmetrics computes the partition-quality metrics of the paper's
// §III (Table I) — bal, IR, OR and partitioning time — for an N-Triples
// dataset, a policy and a partition count.
//
// Usage:
//
//	partmetrics -in lubm10.nt -k 4 -policy graph
//	partmetrics -in lubm10.nt -k 8 -policy domain -domain-marker univ
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"powl/internal/gpart"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rio"
)

func main() {
	var (
		in     = flag.String("in", "", "input RDF file, .nt or .ttl (required)")
		k      = flag.Int("k", 4, "number of partitions")
		policy = flag.String("policy", "graph", "policy: graph, hash, domain")
		marker = flag.String("domain-marker", "univ", "locality marker for the domain policy")
		seed   = flag.Int64("seed", 42, "partitioner seed")
		withOR = flag.Bool("or", true, "also measure output replication (runs the reasoner per partition)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		flag.Usage()
		os.Exit(2)
	}

	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if _, err := rio.LoadFile(*in, dict, g); err != nil {
		fatal(err)
	}

	compiled := owlhorst.Compile(dict, g)
	input := &partition.Input{
		Dict:     dict,
		Instance: owlhorst.SplitInstance(dict, g),
		Skip:     owlhorst.SchemaElements(dict, compiled.Schema),
	}

	var pol partition.Policy
	switch *policy {
	case "graph":
		pol = partition.GraphPolicy{Opts: gpart.Options{Seed: *seed}}
	case "hash":
		pol = partition.HashPolicy{}
	case "domain":
		m := *marker
		pol = partition.DomainPolicy{KeyFunc: func(t rdf.Term) string {
			return extractKey(t.Value, m)
		}}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	res, err := partition.Partition(input, *k, pol)
	if err != nil {
		fatal(err)
	}
	m := partition.ComputeMetrics(input, res)
	fmt.Printf("dataset: %s (%d triples, %d nodes)\n", *in, g.Len(), len(input.Nodes()))
	fmt.Printf("policy=%s k=%d\n", pol.Name(), *k)
	fmt.Printf("bal        = %.1f (stddev of per-partition node counts)\n", m.Bal)
	fmt.Printf("IR         = %.3f (excess node replication)\n", m.IR)
	fmt.Printf("part-time  = %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("nodes/part = %v\n", m.NodesPerPart)
	fmt.Printf("triples/part = %v\n", m.TriplesPerPart)

	if *withOR {
		perPart := make([]int, res.K)
		union := rdf.NewGraph()
		schema := compiled.Schema.Triples()
		for i, part := range res.Parts {
			pg := rdf.NewGraph()
			pg.AddAll(part)
			pg.AddAll(schema)
			reason.Forward{}.Materialize(pg, compiled.InstanceRules)
			perPart[i] = pg.Len()
			union.Union(pg)
		}
		fmt.Printf("OR         = %.3f (excess output replication)\n",
			partition.OutputReplication(perPart, union.Len()))
	}
}

func extractKey(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	j := i + len(marker)
	start := j
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j == start {
		return ""
	}
	return s[i:j]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
