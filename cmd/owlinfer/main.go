// Command owlinfer materializes an OWL-Horst knowledge base in parallel: it
// loads an N-Triples file (ontology + instance data mixed), compiles the
// ontology into instance rules, partitions the workload with the selected
// strategy, runs the round-based parallel reasoner, and writes the closure.
//
// Usage:
//
//	owlinfer -in data.nt -workers 4 -o closure.nt
//	owlinfer -in data.nt -workers 8 -strategy data -policy domain -domain-marker univ
//	owlinfer -in data.nt -workers 2 -strategy rule -engine forward -transport tcp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/ntriples"
	"powl/internal/rdf"
	"powl/internal/rio"
	"powl/internal/rules"
)

func main() {
	var (
		in        = flag.String("in", "", "input RDF file, .nt or .ttl (required)")
		out       = flag.String("o", "", "output N-Triples file for the closure ('' = no output, stats only)")
		workers   = flag.Int("workers", 4, "number of partitions / workers")
		strategy  = flag.String("strategy", "data", "partitioning strategy: data, rule")
		policy    = flag.String("policy", "graph", "data partitioning policy: graph, hash, domain")
		engine    = flag.String("engine", "forward", "rule engine: forward, rete, hybrid, hybrid-shared")
		transport = flag.String("transport", "mem", "transport: mem, file, tcp")
		marker    = flag.String("domain-marker", "", "locality marker for the domain policy, e.g. 'univ' (matches marker+digits in IRIs and literals)")
		simulate  = flag.Bool("simulate", false, "sequential execution with reconstructed parallel time (for speedup measurements on few cores)")
		seed      = flag.Int64("seed", 42, "partitioner seed")
		ruleFile  = flag.String("rules", "", "custom rule file (Jena-style syntax); replaces the OWL-Horst compilation pipeline")
		prov      = flag.Bool("prov", false, "record derivation provenance (rule, round, premises per inferred triple)")
		explain   = flag.String("explain", "", "N-Triples statement to explain after materialization, e.g. '<s> <p> <o> .' (implies -prov)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "missing -in")
		flag.Usage()
		os.Exit(2)
	}

	dict := rdf.NewDict()
	g := rdf.NewGraph()
	n, err := rio.LoadFile(*in, dict, g)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples from %s\n", n, *in)

	ds := &datagen.Dataset{Name: *in, Dict: dict, Graph: g}
	if *marker != "" {
		m := *marker
		ds.DomainKey = func(t rdf.Term) string { return extractKey(t.Value, m) }
	}

	cfg := core.Config{
		Workers:    *workers,
		Strategy:   core.Strategy(*strategy),
		Policy:     core.PolicyKind(*policy),
		Engine:     core.EngineKind(*engine),
		Transport:  core.TransportKind(*transport),
		Simulate:   *simulate,
		Seed:       *seed,
		Provenance: *prov || *explain != "",
	}
	start := time.Now()
	var res *core.Result
	if *ruleFile != "" {
		src, rerr := os.ReadFile(*ruleFile)
		if rerr != nil {
			fatal(rerr)
		}
		rs, rerr := rules.Parse(string(src), dict)
		if rerr != nil {
			fatal(rerr)
		}
		fmt.Fprintf(os.Stderr, "loaded %d custom rules from %s\n", len(rs), *ruleFile)
		res, err = core.MaterializeRules(ds, rs, cfg)
	} else {
		res, err = core.Materialize(ds, cfg)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	fmt.Fprintf(os.Stderr, "closure: %d triples (%d inferred) in %d rounds\n",
		res.Graph.Len(), res.Inferred, res.Rounds)
	fmt.Fprintf(os.Stderr, "partitioning: %v", res.PartitionTime.Round(time.Millisecond))
	if res.Metrics != nil {
		fmt.Fprintf(os.Stderr, "  bal=%.1f IR=%.3f", res.Metrics.Bal, res.Metrics.IR)
	}
	fmt.Fprintf(os.Stderr, "  OR=%.3f\n", res.OR)
	if *simulate {
		fmt.Fprintf(os.Stderr, "simulated parallel time: %v (wall clock %v)\n",
			res.Elapsed.Round(time.Millisecond), wall.Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "elapsed: %v\n", res.Elapsed.Round(time.Millisecond))
	}
	for i, tm := range res.PerWorker {
		fmt.Fprintf(os.Stderr, "  worker %2d: reason=%v io=%v sync=%v sent=%d derived=%d\n",
			i, tm.Reason.Round(time.Millisecond), tm.IO.Round(time.Millisecond),
			tm.Sync.Round(time.Millisecond), tm.Sent, tm.Derived)
	}

	if *explain != "" {
		if err := explainTriple(dict, res.Graph, *explain); err != nil {
			fatal(err)
		}
	}

	if *out != "" {
		var w io.Writer
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
		if err := ntriples.WriteGraph(w, dict, res.Graph); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote closure to %s\n", *out)
	}
}

// explainTriple parses one N-Triples statement, looks it up in the closure
// and prints its derivation DAG as a text tree on stdout.
func explainTriple(dict *rdf.Dict, g *rdf.Graph, stmt string) error {
	st, err := ntriples.NewReader(strings.NewReader(stmt)).Next()
	if err != nil {
		return fmt.Errorf("parsing -explain statement: %w", err)
	}
	t := rdf.Triple{S: dict.Intern(st.S), P: dict.Intern(st.P), O: dict.Intern(st.O)}
	node, ok := g.Explain(t, 0)
	if !ok {
		return fmt.Errorf("triple not in closure: %s", stmt)
	}
	return rdf.WriteExplainText(os.Stdout, dict, node)
}

// extractKey mirrors the generators' locality-key convention: the marker
// followed by digits, anywhere in the term text.
func extractKey(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	j := i + len(marker)
	start := j
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j == start {
		return ""
	}
	return s[i:j]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
