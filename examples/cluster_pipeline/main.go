// Cluster pipeline: the full production workflow on the paper's deployment
// substrate — prepare a shared work directory, run the nodes of a
// shared-filesystem cluster (in-process here; cmd/owlnode runs the same
// protocol as separate machines), merge the closures, and answer an
// inference-dependent SPARQL query over the result.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"powl/internal/datagen"
	"powl/internal/fscluster"
	"powl/internal/gpart"
	"powl/internal/partition"
	"powl/internal/query"
	"powl/internal/reason"
)

func main() {
	const k = 4
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 3, Seed: 7})
	fmt.Printf("LUBM-3: %d triples, %d-node shared-filesystem cluster\n", ds.Graph.Len(), k)

	dir, err := os.MkdirTemp("", "powl-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Master: compile + partition + write the work directory.
	m, err := fscluster.Prepare(dir, ds.Dict, ds.Graph, k,
		partition.GraphPolicy{Opts: gpart.Options{Seed: 42}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %s: IR=%.3f nodes/part=%v\n", dir, m.IR, m.NodesPerPart)

	// Nodes: one goroutine each here; on a cluster this is
	// `owlnode -dir <sharedfs> -id <i>` on each machine.
	start := time.Now()
	var wg sync.WaitGroup
	results := make([]*fscluster.NodeResult, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fscluster.RunNode(fscluster.NodeConfig{
				ID: i, K: k, Dir: dir, Engine: reason.Forward{},
				Poll: time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
	}
	for i, r := range results {
		fmt.Printf("  node %d: %d rounds, derived %d, sent %d\n", i, r.Rounds, r.Derived, r.Sent)
	}

	// Master again: merge the closure files.
	dict, merged, err := fscluster.MergeClosures(dir, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged closure: %d triples in %v\n\n", merged.Len(), time.Since(start).Round(time.Millisecond))

	// Query the materialized KB: department chairs and where they work —
	// Chair is only derivable via someValuesFrom + subclass reasoning.
	q := query.MustParse(`
PREFIX ub: <http://benchmark.powl/lubm#>
SELECT DISTINCT ?chair ?dept WHERE {
  ?chair a ub:Chair .
  ?chair ub:worksFor ?dept .
} LIMIT 6`, dict)
	res := q.Solve(merged)
	res.SortRows()
	fmt.Println("chairs in the materialized KB:")
	fmt.Print(res.Format(dict))
}
