// Oilfield: the MDC-style sensor workload (the paper's proprietary Chevron
// dataset, §VI). Deep transitive partOf chains are closed in parallel; the
// example then demonstrates the rule-partitioning strategy and queries the
// materialized KB for every asset transitively contained in one field.
package main

import (
	"fmt"
	"log"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/rdf"
)

func main() {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 8, Seed: 7})
	fmt.Printf("MDC-8: %d triples across 8 oilfields\n", ds.Graph.Len())

	serial, err := core.MaterializeSerial(ds, core.HybridEngine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial closure: %d triples in %v\n",
		serial.Graph.Len(), serial.Elapsed.Round(time.Millisecond))

	// Data partitioning: fields are near-disconnected, so this is the
	// strategy's best case.
	data, err := core.Materialize(ds, core.Config{
		Workers: 8, Strategy: core.DataPartitioning, Policy: core.DomainPolicy,
		Engine: core.HybridEngine, Simulate: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data partitioning, k=8 (domain policy): %v (%.2fx, IR=%.3f)\n",
		data.Elapsed.Round(time.Millisecond),
		serial.Elapsed.Seconds()/data.Elapsed.Seconds(), data.Metrics.IR)

	// Rule partitioning: the full data everywhere, rules split by their
	// dependency graph (§III-B).
	rule, err := core.Materialize(ds, core.Config{
		Workers: 3, Strategy: core.RulePartitioning,
		Engine: core.HybridEngine, Simulate: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule partitioning, k=3: %v (%.2fx, dependency cut=%d)\n",
		rule.Elapsed.Round(time.Millisecond),
		serial.Elapsed.Seconds()/rule.Elapsed.Seconds(), rule.RuleCut)

	if !data.Graph.Equal(serial.Graph) || !rule.Graph.Equal(serial.Graph) {
		log.Fatal("parallel closures differ from serial closure")
	}

	// Query the materialized KB: everything transitively part of field0.
	partOf, _ := ds.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/mdc#partOf"})
	field0, _ := ds.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/mdc#field0"})
	contained := data.Graph.Match(rdf.Wildcard, partOf, field0)
	direct := ds.Graph.Match(rdf.Wildcard, partOf, field0)
	fmt.Printf("\nassets in field0: %d direct, %d after transitive closure\n",
		len(direct), len(contained))
	for i, t := range contained {
		if i >= 5 {
			fmt.Printf("  … and %d more\n", len(contained)-5)
			break
		}
		fmt.Printf("  %s\n", ds.Dict.Term(t.S))
	}
}
