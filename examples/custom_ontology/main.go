// Custom ontology: author an OWL-Horst ontology from scratch (classes,
// restrictions, property characteristics), load instance data from inline
// N-Triples, inspect the rules the compiler generates, and verify specific
// expected inferences — the workflow of a user bringing their own schema.
package main

import (
	"fmt"
	"log"
	"strings"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/ntriples"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
)

const data = `
# --- ontology ---------------------------------------------------------------
<http://shop/ns#Customer> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://shop/ns#Agent> .
<http://shop/ns#PremiumCustomer> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://shop/ns#Customer> .
<http://shop/ns#purchased> <http://www.w3.org/2000/01/rdf-schema#domain> <http://shop/ns#Customer> .
<http://shop/ns#purchased> <http://www.w3.org/2000/01/rdf-schema#range> <http://shop/ns#Product> .
<http://shop/ns#bundledWith> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#SymmetricProperty> .
<http://shop/ns#partOfOrder> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#TransitiveProperty> .
# PremiumBuyer ≡ ∃purchased.LuxuryItem
<http://shop/ns#PremiumBuyerRestriction> <http://www.w3.org/2002/07/owl#onProperty> <http://shop/ns#purchased> .
<http://shop/ns#PremiumBuyerRestriction> <http://www.w3.org/2002/07/owl#someValuesFrom> <http://shop/ns#LuxuryItem> .
<http://shop/ns#PremiumBuyerRestriction> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://shop/ns#PremiumCustomer> .

# --- instance data -----------------------------------------------------------
<http://shop/data#alice> <http://shop/ns#purchased> <http://shop/data#watch> .
<http://shop/data#watch> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop/ns#LuxuryItem> .
<http://shop/data#watch> <http://shop/ns#bundledWith> <http://shop/data#strap> .
<http://shop/data#item1> <http://shop/ns#partOfOrder> <http://shop/data#box3> .
<http://shop/data#box3> <http://shop/ns#partOfOrder> <http://shop/data#order9> .
`

func main() {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if _, err := ntriples.ReadGraph(strings.NewReader(data), dict, g); err != nil {
		log.Fatal(err)
	}

	// Peek at the compiler's output: the schema closure and the instance
	// rules (all single-join, §II of the paper).
	compiled := owlhorst.Compile(dict, g)
	fmt.Printf("ontology compiled into %d instance rules, e.g.:\n", len(compiled.InstanceRules))
	for i, r := range compiled.InstanceRules {
		if i >= 4 {
			break
		}
		fmt.Println("  ", r.Format(dict))
	}

	ds := &datagen.Dataset{Name: "shop", Dict: dict, Graph: g}
	res, err := core.Materialize(ds, core.Config{Workers: 2, Policy: core.HashPolicy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosure: %d triples (%d inferred)\n\n", res.Graph.Len(), res.Inferred)

	must := func(s, p, o string) {
		st := rdf.Triple{
			S: dict.InternIRI(s),
			P: dict.InternIRI(p),
			O: dict.InternIRI(o),
		}
		status := "MISSING"
		if res.Graph.Has(st) {
			status = "ok"
		}
		fmt.Printf("  [%s] %s\n", status, dict.FormatTriple(st))
		if status == "MISSING" {
			log.Fatal("expected inference missing")
		}
	}
	fmt.Println("expected inferences:")
	must("http://shop/data#alice", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "http://shop/ns#PremiumCustomer")
	must("http://shop/data#alice", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "http://shop/ns#Agent")
	must("http://shop/data#strap", "http://shop/ns#bundledWith", "http://shop/data#watch")
	must("http://shop/data#item1", "http://shop/ns#partOfOrder", "http://shop/data#order9")
	must("http://shop/data#watch", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "http://shop/ns#Product")
}
