// University: the workload from the paper's evaluation — generate a
// LUBM-style multi-university knowledge base, compare the three data
// partitioning policies, and materialize with the best one, reporting the
// speedup over a serial run. This is Figure 1/Figure 5 in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
)

func main() {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 4, Seed: 7})
	fmt.Printf("LUBM-4: %d triples\n", ds.Graph.Len())

	serial, err := core.MaterializeSerial(ds, core.HybridEngine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial hybrid reasoner: closure %d triples in %v\n\n",
		serial.Graph.Len(), serial.Elapsed.Round(time.Millisecond))

	fmt.Println("policy comparison at k=4 (Simulate reconstructs parallel time on one core):")
	for _, pol := range []core.PolicyKind{core.GraphPolicy, core.DomainPolicy, core.HashPolicy} {
		res, err := core.Materialize(ds, core.Config{
			Workers:   4,
			Strategy:  core.DataPartitioning,
			Policy:    pol,
			Engine:    core.HybridEngine,
			Transport: core.MemTransport,
			Simulate:  true,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Graph.Equal(serial.Graph) {
			log.Fatalf("%s: parallel closure differs from serial closure", pol)
		}
		fmt.Printf("  %-7s speedup %5.2fx  IR=%.3f OR=%.3f bal=%.1f partition=%v\n",
			pol,
			serial.Elapsed.Seconds()/res.Elapsed.Seconds(),
			res.Metrics.IR, res.OR, res.Metrics.Bal,
			res.PartitionTime.Round(time.Millisecond))
	}

	fmt.Println("\nscaling with the graph policy:")
	for _, k := range []int{1, 2, 4, 8} {
		res, err := core.Materialize(ds, core.Config{
			Workers:   k,
			Strategy:  core.DataPartitioning,
			Policy:    core.GraphPolicy,
			Engine:    core.HybridEngine,
			Transport: core.MemTransport,
			Simulate:  true,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: %v (%.2fx, %d rounds)\n",
			k, res.Elapsed.Round(time.Millisecond),
			serial.Elapsed.Seconds()/res.Elapsed.Seconds(), res.Rounds)
	}
}
