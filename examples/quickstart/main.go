// Quickstart: build a tiny family ontology, materialize it in parallel with
// the data-partitioning strategy, and print the inferred triples.
package main

import (
	"fmt"
	"log"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/rdf"
	"powl/internal/vocab"
)

func main() {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	add := func(s, p, o rdf.ID) { g.Add(rdf.Triple{S: s, P: p, O: o}) }
	iri := func(s string) rdf.ID { return dict.InternIRI("http://example.org/" + s) }

	// Ontology: ancestorOf is transitive, parentOf is a sub-property of
	// ancestorOf, and Person is the domain of parentOf.
	typ := dict.InternIRI(vocab.RDFType)
	add(iri("ancestorOf"), typ, dict.InternIRI(vocab.OWLTransitiveProperty))
	add(iri("parentOf"), dict.InternIRI(vocab.RDFSSubPropertyOf), iri("ancestorOf"))
	add(iri("parentOf"), dict.InternIRI(vocab.RDFSDomain), iri("Person"))

	// Data: three generations.
	add(iri("ada"), iri("parentOf"), iri("bob"))
	add(iri("bob"), iri("parentOf"), iri("cyn"))
	add(iri("cyn"), iri("parentOf"), iri("dee"))

	ds := &datagen.Dataset{Name: "family", Dict: dict, Graph: g}
	res, err := core.Materialize(ds, core.Config{
		Workers:  2,
		Strategy: core.DataPartitioning,
		Policy:   core.HashPolicy, // tiny data: any policy works
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("base %d triples -> closure %d triples (%d inferred, %d rounds)\n\n",
		g.Len(), res.Graph.Len(), res.Inferred, res.Rounds)
	for _, t := range res.Graph.SortedTriples() {
		if !g.Has(t) {
			fmt.Println("inferred:", dict.FormatTriple(t))
		}
	}
}
