// Package powl's top-level benchmarks regenerate each table and figure of
// the paper (via internal/experiments, at Quick scale so a -bench=. sweep
// stays tractable) and add ablation benchmarks for the design choices
// DESIGN.md calls out: tabling policy, delta strategy, engine, transport and
// the graph partitioner.
//
// Speedup-style results are attached as custom benchmark metrics, so
// `go test -bench=.` prints the paper-shaped numbers alongside ns/op.
package powl_test

import (
	"context"
	"testing"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/experiments"
	"powl/internal/gpart"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/transport"
)

// --- Figures and table ------------------------------------------------------

func BenchmarkFig1_Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "lubm" && r.K == 4 {
				b.ReportMetric(r.Speedup, "lubm-speedup@4")
			}
			if r.Dataset == "uobm" && r.K == 4 {
				b.ReportMetric(r.Speedup, "uobm-speedup@4")
			}
		}
	}
}

func BenchmarkFig2_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		total := last.Reason + last.IO + last.Sync + last.Aggregate
		if total > 0 {
			b.ReportMetric(100*float64(last.IO+last.Sync)/float64(total), "io+sync%")
		}
	}
}

func BenchmarkFig3_TheoreticalMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Measured, "measured")
		b.ReportMetric(last.TheoreticalMax, "theoretical-max")
	}
}

func BenchmarkFig4_SerialScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RSquared, "r-squared")
	}
}

func BenchmarkFig5_Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.K != 4 {
				continue
			}
			switch r.Policy {
			case core.GraphPolicy:
				b.ReportMetric(r.Speedup, "graph@4")
			case core.HashPolicy:
				b.ReportMetric(r.Speedup, "hash@4")
			}
		}
	}
}

func BenchmarkFig6_RulePartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "lubm" && r.K == 2 {
				b.ReportMetric(r.Speedup, "lubm-speedup@2")
			}
		}
	}
}

func BenchmarkTable1_Metrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.K != 4 {
				continue
			}
			switch r.Policy {
			case "graph":
				b.ReportMetric(r.IR, "graph-IR@4")
			case "hash":
				b.ReportMetric(r.IR, "hash-IR@4")
			}
		}
	}
}

// --- Engine benchmarks -------------------------------------------------------

func benchLUBM() *datagen.Dataset {
	return datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7})
}

func BenchmarkSerialForward_LUBM2(b *testing.B) {
	ds := benchLUBM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.MaterializeSerial(ds, core.ForwardEngine)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Graph.Len()), "closure-triples")
	}
}

func BenchmarkSerialHybrid_LUBM2(b *testing.B) {
	ds := benchLUBM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaterializeSerial(ds, core.HybridEngine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Engine compares the three engines' full
// materialization cost on the same workload.
func BenchmarkAblation_Engine(b *testing.B) {
	ds := benchLUBM()
	for _, kind := range []core.EngineKind{core.ForwardEngine, core.ReteEngine, core.HybridEngine} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaterializeSerial(ds, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Tabling compares the paper-faithful per-query table
// reset against shared tabling: the gap IS the worst-case overhead the
// paper's super-linear speedups eliminate by partitioning.
func BenchmarkAblation_Tabling(b *testing.B) {
	ds := benchLUBM()
	for _, kind := range []core.EngineKind{core.HybridEngine, core.HybridSharedEngine} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MaterializeSerial(ds, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Delta compares the two incremental re-materialization
// strategies on a worker-shaped update: a materialized graph absorbing a
// batch of boundary tuples.
func BenchmarkAblation_Delta(b *testing.B) {
	ds := benchLUBM()
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	base := rdf.NewGraph()
	base.AddAll(owlhorst.SplitInstance(ds.Dict, ds.Graph))
	base.Union(compiled.Schema)
	reason.Forward{}.Materialize(base, compiled.InstanceRules)

	// Seeds: synthetic memberships tying existing people to existing orgs.
	memberOf := ds.Dict.InternIRI("http://benchmark.powl/lubm#memberOf")
	var people, orgs []rdf.ID
	typ := ds.Dict.InternIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	ug := ds.Dict.InternIRI("http://benchmark.powl/lubm#UndergraduateStudent")
	dept := ds.Dict.InternIRI("http://benchmark.powl/lubm#Department")
	base.ForEachMatch(rdf.Wildcard, typ, ug, func(t rdf.Triple) bool {
		people = append(people, t.S)
		return len(people) < 32
	})
	base.ForEachMatch(rdf.Wildcard, typ, dept, func(t rdf.Triple) bool {
		orgs = append(orgs, t.S)
		return len(orgs) < 32
	})
	var seeds []rdf.Triple
	for i, p := range people {
		seeds = append(seeds, rdf.Triple{S: p, P: memberOf, O: orgs[i%len(orgs)]})
	}

	for _, tc := range []struct {
		name string
		inc  reason.Incremental
	}{
		{"forward-delta", reason.Forward{}},
		{"frontier-backward-delta", reason.Hybrid{FrontierDelta: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := base.Clone()
				var fresh []rdf.Triple
				for _, s := range seeds {
					if g.Add(s) {
						fresh = append(fresh, s)
					}
				}
				b.StartTimer()
				tc.inc.MaterializeFrom(g, compiled.InstanceRules, fresh)
			}
		})
	}
}

// BenchmarkAblation_Transport measures the per-exchange cost of the three
// transports shipping a fixed batch.
func BenchmarkAblation_Transport(b *testing.B) {
	ds := benchLUBM()
	batch := ds.Graph.Triples()[:2000]
	run := func(b *testing.B, tr transport.Transport) {
		for i := 0; i < b.N; i++ {
			if err := tr.Send(context.Background(), i, 0, 1, batch); err != nil {
				b.Fatal(err)
			}
			got, err := tr.Recv(context.Background(), i, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(batch) {
				b.Fatalf("lost triples: %d of %d", len(got), len(batch))
			}
		}
	}
	b.Run("mem", func(b *testing.B) {
		tr := transport.NewMem()
		defer tr.Close()
		run(b, tr)
	})
	b.Run("file", func(b *testing.B) {
		tr, err := transport.NewFile(b.TempDir(), ds.Dict)
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		run(b, tr)
	})
	b.Run("tcp", func(b *testing.B) {
		tr, err := transport.NewTCP(2, ds.Dict)
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		run(b, tr)
	})
}

// BenchmarkGpart measures the multilevel partitioner on the LUBM resource
// graph (the "Part. Time" column of Table I).
func BenchmarkGpart(b *testing.B) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 4, Seed: 7})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	skip := owlhorst.SchemaElements(ds.Dict, compiled.Schema)
	nodes := map[rdf.ID]int{}
	var ids []rdf.ID
	for _, t := range instance {
		for _, x := range [2]rdf.ID{t.S, t.O} {
			if _, isSchema := skip[x]; isSchema {
				continue
			}
			if _, ok := nodes[x]; !ok {
				nodes[x] = len(ids)
				ids = append(ids, x)
			}
		}
	}
	builder := gpart.NewBuilder(len(ids))
	for _, t := range instance {
		si, sok := nodes[t.S]
		oi, ook := nodes[t.O]
		if sok && ook {
			builder.AddEdge(si, oi, 1)
		}
	}
	g := builder.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part, err := gpart.Partition(g, 8, gpart.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(gpart.EdgeCut(g, part)), "edge-cut")
	}
}

// BenchmarkRoundTripNTriples measures the serialization path the file and
// TCP transports pay per tuple.
func BenchmarkRoundTripNTriples(b *testing.B) {
	ds := benchLUBM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialized := 0
		for _, t := range ds.Graph.Triples()[:1000] {
			serialized += len(ds.Dict.FormatTriple(t))
		}
		if serialized == 0 {
			b.Fatal("nothing serialized")
		}
	}
}
