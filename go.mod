module powl

go 1.22
